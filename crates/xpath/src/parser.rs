//! Parser for the positive Core XPath fragment.
//!
//! Supported syntax (see [`crate::ast`] for the grammar):
//!
//! * explicit axes: `child::A`, `descendant::B`, `descendant-or-self::*`,
//!   `following-sibling::C`, `following::D`, `parent::E`, `ancestor::F`,
//!   `preceding::G`, `preceding-sibling::H`, `self::I`;
//! * abbreviations: a bare name means `child::name`, `//` means a
//!   `descendant-or-self::*` step before the next step, a leading `/` makes
//!   the path absolute, `.` means `self::*`;
//! * predicates `[...]` containing relative paths combined with `and` / `or`
//!   and parentheses;
//! * top-level union `|`.

use std::fmt;

use cqt_trees::Axis;

use crate::ast::{LocationPath, NodeTest, Predicate, Step, XPathQuery};

/// Errors produced by [`parse_xpath`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseXPathError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description of the error.
    pub message: String,
}

impl fmt::Display for ParseXPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPath parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseXPathError {}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseXPathError> {
        Err(ParseXPathError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseXPathError> {
        let start = self.pos;
        while self
            .peek()
            .map(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'\'')
            .unwrap_or(false)
        {
            // A hyphen is part of the name only when followed by a letter
            // (axis names like following-sibling).
            if self.peek() == Some(b'-')
                && !self
                    .bytes
                    .get(self.pos + 1)
                    .map(|c| c.is_ascii_alphabetic())
                    .unwrap_or(false)
            {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return self.error("expected a name");
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    fn parse_query(&mut self) -> Result<XPathQuery, ParseXPathError> {
        let mut paths = vec![self.parse_path()?];
        loop {
            self.skip_ws();
            if self.eat_str("|") {
                paths.push(self.parse_path()?);
            } else {
                break;
            }
        }
        Ok(XPathQuery { paths })
    }

    fn parse_path(&mut self) -> Result<LocationPath, ParseXPathError> {
        self.skip_ws();
        let mut steps = Vec::new();
        let absolute;
        if self.starts_with("//") {
            absolute = true;
            self.pos += 2;
            steps.push(Step::new(Axis::ChildStar, NodeTest::Wildcard));
        } else if self.starts_with("/") {
            absolute = true;
            self.pos += 1;
        } else {
            absolute = false;
        }
        steps.push(self.parse_step()?);
        loop {
            self.skip_ws();
            if self.starts_with("//") {
                self.pos += 2;
                steps.push(Step::new(Axis::ChildStar, NodeTest::Wildcard));
                steps.push(self.parse_step()?);
            } else if self.starts_with("/") && !self.starts_with("/|") {
                self.pos += 1;
                steps.push(self.parse_step()?);
            } else {
                break;
            }
        }
        Ok(LocationPath { absolute, steps })
    }

    fn parse_step(&mut self) -> Result<Step, ParseXPathError> {
        self.skip_ws();
        // `.` abbreviation.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut step = Step::new(Axis::SelfAxis, NodeTest::Wildcard);
            self.parse_predicates(&mut step)?;
            return Ok(step);
        }
        // Wildcard with implicit child axis.
        if self.peek() == Some(b'*') {
            self.pos += 1;
            let mut step = Step::new(Axis::Child, NodeTest::Wildcard);
            self.parse_predicates(&mut step)?;
            return Ok(step);
        }
        let name_offset = self.pos;
        let name = self.parse_name()?;
        self.skip_ws();
        let (axis, node_test) = if self.eat_str("::") {
            // Explicit axis.
            let axis: Axis = name.parse().map_err(|_| ParseXPathError {
                offset: name_offset,
                message: format!("unknown XPath axis {name:?}"),
            })?;
            self.skip_ws();
            let node_test = if self.peek() == Some(b'*') {
                self.pos += 1;
                NodeTest::Wildcard
            } else {
                NodeTest::Label(self.parse_name()?)
            };
            (axis, node_test)
        } else {
            // Abbreviated step: child axis with a name test.
            (Axis::Child, NodeTest::Label(name))
        };
        let mut step = Step::new(axis, node_test);
        self.parse_predicates(&mut step)?;
        Ok(step)
    }

    fn parse_predicates(&mut self, step: &mut Step) -> Result<(), ParseXPathError> {
        loop {
            self.skip_ws();
            if !self.eat_str("[") {
                return Ok(());
            }
            let predicate = self.parse_predicate_expr()?;
            self.skip_ws();
            if !self.eat_str("]") {
                return self.error("expected ']'");
            }
            step.predicates.push(predicate);
        }
    }

    fn parse_predicate_expr(&mut self) -> Result<Predicate, ParseXPathError> {
        let mut lhs = self.parse_predicate_term()?;
        loop {
            self.skip_ws();
            if self.starts_with("and") && self.word_boundary_after(3) {
                self.pos += 3;
                let rhs = self.parse_predicate_term()?;
                lhs = Predicate::And(Box::new(lhs), Box::new(rhs));
            } else if self.starts_with("or") && self.word_boundary_after(2) {
                self.pos += 2;
                let rhs = self.parse_predicate_term()?;
                lhs = Predicate::Or(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn word_boundary_after(&self, len: usize) -> bool {
        self.bytes
            .get(self.pos + len)
            .map(|c| !c.is_ascii_alphanumeric() && *c != b'_')
            .unwrap_or(true)
    }

    fn parse_predicate_term(&mut self) -> Result<Predicate, ParseXPathError> {
        self.skip_ws();
        if self.eat_str("(") {
            let inner = self.parse_predicate_expr()?;
            self.skip_ws();
            if !self.eat_str(")") {
                return self.error("expected ')'");
            }
            return Ok(inner);
        }
        Ok(Predicate::Path(self.parse_path()?))
    }

    fn parse(mut self) -> Result<XPathQuery, ParseXPathError> {
        let query = self.parse_query()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return self.error("trailing input after XPath expression");
        }
        Ok(query)
    }
}

/// Parses a positive Core XPath expression.
pub fn parse_xpath(input: &str) -> Result<XPathQuery, ParseXPathError> {
    Parser::new(input).parse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_introduction_example() {
        // //A[B]/following::C  (the query from Section 1).
        let q = parse_xpath("//A[B]/following::C").unwrap();
        assert_eq!(q.paths.len(), 1);
        let path = &q.paths[0];
        assert!(path.absolute);
        // Steps: descendant-or-self::*, child::A[child::B], following::C.
        assert_eq!(path.steps.len(), 3);
        assert_eq!(path.steps[0].axis, Axis::ChildStar);
        assert_eq!(path.steps[1].axis, Axis::Child);
        assert_eq!(path.steps[1].node_test, NodeTest::Label("A".into()));
        assert_eq!(path.steps[1].predicates.len(), 1);
        assert_eq!(path.steps[2].axis, Axis::Following);
        assert_eq!(path.steps[2].node_test, NodeTest::Label("C".into()));
    }

    #[test]
    fn parses_explicit_axes_and_wildcards() {
        let q = parse_xpath("/child::A/descendant::*/following-sibling::B/parent::*").unwrap();
        let steps = &q.paths[0].steps;
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0].axis, Axis::Child);
        assert_eq!(steps[1].axis, Axis::ChildPlus);
        assert_eq!(steps[1].node_test, NodeTest::Wildcard);
        assert_eq!(steps[2].axis, Axis::NextSiblingPlus);
        assert_eq!(steps[3].axis, Axis::Parent);
    }

    #[test]
    fn parses_predicates_with_and_or() {
        let q = parse_xpath("//S[NP and (VP or PP)]/NP").unwrap();
        let step = &q.paths[0].steps[1];
        assert_eq!(step.predicates.len(), 1);
        match &step.predicates[0] {
            Predicate::And(_, rhs) => match rhs.as_ref() {
                Predicate::Or(_, _) => {}
                other => panic!("expected or, got {other:?}"),
            },
            other => panic!("expected and, got {other:?}"),
        }
    }

    #[test]
    fn parses_union_and_relative_paths() {
        let q = parse_xpath("A/B | C//D").unwrap();
        assert_eq!(q.paths.len(), 2);
        assert!(!q.paths[0].absolute);
        assert_eq!(q.paths[1].steps.len(), 3);
    }

    #[test]
    fn parses_dot_and_nested_predicates() {
        let q = parse_xpath("//A[./B[C]]").unwrap();
        let a_step = &q.paths[0].steps[1];
        assert_eq!(a_step.predicates.len(), 1);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_xpath("").is_err());
        assert!(parse_xpath("//A[").is_err());
        assert!(parse_xpath("//A]").is_err());
        assert!(parse_xpath("sideways::A").is_err());
        assert!(parse_xpath("//A[B and ]").is_err());
        assert!(parse_xpath("//A | ").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        for text in [
            "//A[B]/following::C",
            "/S/NP[DT and NN]",
            "A/B | C//D",
            "//S[NP[PP] or VP]",
        ] {
            let parsed = parse_xpath(text).unwrap();
            let reparsed = parse_xpath(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "round trip failed for {text}");
        }
    }
}
