//! # cqt-xpath — a positive Core XPath fragment
//!
//! The paper relates conjunctive queries over trees to XPath in two ways:
//!
//! * every acyclic conjunctive query (and hence, by Theorem 6.10, every
//!   conjunctive query) over XPath axes is expressible in positive Core
//!   XPath (Remark 6.1 / Remark 6.12), and
//! * the most frequently used XPath fragment maps to acyclic conjunctive
//!   queries — the introduction's example `//A[B]/following::C` becomes
//!   `Q(z) :- A(x), Child(x, y), B(y), Following(x, z), C(z)`.
//!
//! This crate implements both directions for the *positive navigational
//! fragment* (location paths with axes, name tests, nested predicates
//! combined with `and` / `or`, and top-level union `|`):
//!
//! * [`ast`] / [`parser`] — the abstract syntax and a parser;
//! * [`compile`] — XPath → conjunctive queries (a union of acyclic CQs);
//! * [`eval`] — a direct set-based evaluator over [`cqt_trees::Tree`], used
//!   to cross-check the compiled queries against the CQ engines;
//! * [`emit`] — acyclic (positive) monadic queries → XPath strings, the
//!   constructive content of Remark 6.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod emit;
pub mod eval;
pub mod parser;
pub mod prepared;

pub use ast::{LocationPath, NodeTest, Predicate, Step, XPathQuery};
pub use compile::compile_to_positive_query;
pub use emit::{emit_acyclic_query, emit_positive_query};
pub use eval::{evaluate_xpath, evaluate_xpath_prepared};
pub use parser::parse_xpath;
pub use prepared::CompiledXPath;
