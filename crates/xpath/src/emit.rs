//! Emission of acyclic monadic queries as positive Core XPath (Remark 6.1).
//!
//! Remark 6.1 observes that positive Core XPath over the axes and their
//! inverses captures the unary acyclic positive queries. The constructive
//! direction implemented here renders an acyclic monadic conjunctive query as
//! an XPath expression:
//!
//! * the head variable becomes the result step
//!   `/descendant-or-self::<test>` (which ranges over *all* nodes of the
//!   document, including the root);
//! * every atom adjacent to an already-rendered variable becomes a predicate
//!   `[axis::<test>…]`, using the axis itself when the atom points away from
//!   the rendered variable and its inverse otherwise;
//! * connected components not containing the head variable become
//!   document-global existence predicates
//!   `[ancestor-or-self::*[descendant-or-self::<test>…]]` anchored at the
//!   head (every node reaches the whole document through
//!   `ancestor-or-self::*` followed by `descendant-or-self`).
//!
//! Axes without an XPath name (`NextSibling`, `NextSibling*` and their
//! inverses) are reported as unsupported — the paper notes they are not
//! XPath axes either.

use std::collections::BTreeSet;
use std::fmt;

use cqt_query::{ConjunctiveQuery, PositiveQuery, Var};
use cqt_trees::Axis;

/// Errors reported by the emitter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmitError {
    /// The query is not monadic (XPath expressions select single nodes).
    NotMonadic,
    /// The query is not acyclic.
    NotAcyclic,
    /// The query uses an axis with no XPath counterpart.
    UnsupportedAxis(Axis),
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitError::NotMonadic => write!(f, "only monadic queries can be emitted as XPath"),
            EmitError::NotAcyclic => write!(f, "only acyclic queries can be emitted as XPath"),
            EmitError::UnsupportedAxis(axis) => {
                write!(f, "axis {axis} has no XPath counterpart")
            }
        }
    }
}

impl std::error::Error for EmitError {}

/// Emits an acyclic monadic conjunctive query as an XPath expression.
pub fn emit_acyclic_query(query: &ConjunctiveQuery) -> Result<String, EmitError> {
    if !query.is_monadic() {
        return Err(EmitError::NotMonadic);
    }
    if !query.is_acyclic() {
        return Err(EmitError::NotAcyclic);
    }
    let head = query.head()[0];
    let mut rendered: BTreeSet<Var> = BTreeSet::new();
    let head_fragment = render_var(query, head, None, &mut rendered)?;

    // Remaining connected components (variables not reachable from the head)
    // become global existence predicates.
    let mut extra_predicates = String::new();
    loop {
        let next = query
            .used_vars()
            .into_iter()
            .find(|v| !rendered.contains(v));
        let Some(anchor) = next else { break };
        let fragment = render_var(query, anchor, None, &mut rendered)?;
        extra_predicates.push_str(&format!(
            "[ancestor-or-self::*[descendant-or-self::{fragment}]]"
        ));
    }
    Ok(format!(
        "/descendant-or-self::{head_fragment}{extra_predicates}"
    ))
}

/// Emits an acyclic positive query as a union of XPath expressions.
pub fn emit_positive_query(query: &PositiveQuery) -> Result<String, EmitError> {
    let parts: Result<Vec<String>, EmitError> = query.iter().map(emit_acyclic_query).collect();
    Ok(parts?.join(" | "))
}

/// Renders the node test and predicates of `var`, recursing into all adjacent
/// atoms except the one leading back to `parent`.
fn render_var(
    query: &ConjunctiveQuery,
    var: Var,
    parent_atom: Option<(Var, cqt_query::AxisAtom)>,
    rendered: &mut BTreeSet<Var>,
) -> Result<String, EmitError> {
    rendered.insert(var);
    let labels = query.labels_of(var);
    let mut out = String::new();
    match labels.first() {
        Some(first) => out.push_str(first),
        None => out.push('*'),
    }
    // Additional labels become self-predicates.
    for label in labels.iter().skip(1) {
        out.push_str(&format!("[self::{label}]"));
    }
    for atom in query.axis_atoms_mentioning(var) {
        if let Some((_, parent)) = parent_atom {
            if atom == parent {
                continue;
            }
        }
        let (axis, neighbour) = if atom.from == var {
            (atom.axis, atom.to)
        } else {
            (atom.axis.inverse(), atom.from)
        };
        // Self-loops over reflexive axes are tautologies; others cannot occur
        // in an acyclic query (they would be cycles).
        if neighbour == var {
            continue;
        }
        let axis_name = axis.xpath_name().ok_or(EmitError::UnsupportedAxis(axis))?;
        let inner = render_var(query, neighbour, Some((var, atom)), rendered)?;
        out.push_str(&format!("[{axis_name}::{inner}]"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_to_positive_query;
    use crate::eval::evaluate_xpath;
    use crate::parser::parse_xpath;
    use cqt_core::{Answer, Engine};
    use cqt_query::cq::intro_xpath_query;
    use cqt_query::parse_query;
    use cqt_trees::generate::{random_tree, RandomTreeConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The emitted XPath must select the same nodes as the original query.
    fn check_equivalence(query: &ConjunctiveQuery, xpath: &str, seed: u64) {
        let parsed =
            parse_xpath(xpath).unwrap_or_else(|e| panic!("emitted invalid XPath {xpath}: {e}"));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alphabet: Vec<String> = query
            .label_alphabet()
            .into_iter()
            .map(str::to_owned)
            .collect();
        alphabet.push("FILLER".to_owned());
        let config = RandomTreeConfig {
            nodes: 25,
            alphabet,
            ..RandomTreeConfig::default()
        };
        for _ in 0..10 {
            let tree = random_tree(&mut rng, &config);
            let direct: Vec<_> = evaluate_xpath(&tree, &parsed).iter().collect();
            let original = match Engine::new().eval(&tree, query) {
                Answer::Nodes(nodes) => nodes,
                other => panic!("expected node answer, got {other:?}"),
            };
            assert_eq!(original, direct, "mismatch for emitted XPath {xpath}");
        }
    }

    #[test]
    fn emits_the_introduction_query() {
        let q = intro_xpath_query();
        let xpath = emit_acyclic_query(&q).unwrap();
        // The head variable is the C node; it is related to the A node by the
        // inverse of Following, i.e. the preceding axis.
        assert!(xpath.starts_with("/descendant-or-self::C"));
        assert!(xpath.contains("preceding::A"));
        assert!(xpath.contains("child::B"));
        check_equivalence(&q, &xpath, 1);
    }

    #[test]
    fn emits_queries_with_disconnected_components() {
        let q = parse_query("Q(x) :- A(x), Child(x, y), B(y), C(u), Child+(u, w), D(w).").unwrap();
        let xpath = emit_acyclic_query(&q).unwrap();
        assert!(xpath.contains("ancestor-or-self::*"));
        check_equivalence(&q, &xpath, 2);
    }

    #[test]
    fn emits_multi_labeled_variables_and_wildcards() {
        let q = parse_query("Q(x) :- A(x), B(x), Child(x, y).").unwrap();
        let xpath = emit_acyclic_query(&q).unwrap();
        assert!(xpath.contains("[self::B]"));
        assert!(xpath.contains("child::*"));
        check_equivalence(&q, &xpath, 3);
    }

    #[test]
    fn emit_compile_round_trip() {
        let q = intro_xpath_query();
        let xpath = emit_acyclic_query(&q).unwrap();
        let compiled = compile_to_positive_query(&parse_xpath(&xpath).unwrap());
        assert!(compiled.is_acyclic());
        // The recompiled query is equivalent to the original on random trees.
        let mut rng = StdRng::seed_from_u64(4);
        let config = RandomTreeConfig {
            nodes: 20,
            alphabet: ["A", "B", "C", "F"].iter().map(|s| s.to_string()).collect(),
            ..RandomTreeConfig::default()
        };
        for _ in 0..10 {
            let tree = random_tree(&mut rng, &config);
            let original = Engine::new().eval(&tree, &q);
            let recompiled = Engine::new().eval_positive(&tree, &compiled);
            assert_eq!(original, recompiled);
        }
    }

    #[test]
    fn unsupported_cases_are_reported() {
        let boolean = parse_query("Q() :- A(x).").unwrap();
        assert_eq!(emit_acyclic_query(&boolean), Err(EmitError::NotMonadic));
        let cyclic = cqt_query::cq::figure1_query();
        assert_eq!(emit_acyclic_query(&cyclic), Err(EmitError::NotAcyclic));
        let next_sibling = parse_query("Q(x) :- A(x), NextSibling(x, y).").unwrap();
        assert!(matches!(
            emit_acyclic_query(&next_sibling),
            Err(EmitError::UnsupportedAxis(_))
        ));
        assert!(EmitError::NotMonadic.to_string().contains("monadic"));
        // Positive-query emission concatenates with a union.
        let apq = PositiveQuery::from_disjuncts(vec![
            parse_query("Q(x) :- A(x).").unwrap(),
            parse_query("Q(x) :- B(x).").unwrap(),
        ]);
        let emitted = emit_positive_query(&apq).unwrap();
        assert!(emitted.contains(" | "));
    }
}
