//! XPath on the prepare/execute path.
//!
//! A [`CompiledXPath`] takes a location-path query through the full one-time
//! pipeline — parse → compile to a union of acyclic monadic conjunctive
//! queries ([`crate::compile`]) → one [`CompiledQuery`] plan per disjunct —
//! and then evaluates any number of times against [`PreparedTree`]s with a
//! caller-provided [`ExecScratch`]. This is the same prepared path the
//! `cqt-service` serving layer drives for datalog-syntax queries, so
//! location paths ride the plan cache and per-tree label/relation caches
//! like every other query shape.

use cqt_core::{CompiledQuery, ExecScratch};
use cqt_trees::{NodeSet, PreparedTree, Tree};

use crate::ast::XPathQuery;
use crate::compile::compile_to_positive_query;
use crate::parser::{parse_xpath, ParseXPathError};

/// An XPath query compiled once into per-disjunct execution plans.
#[derive(Clone, Debug)]
pub struct CompiledXPath {
    source: XPathQuery,
    plans: Vec<CompiledQuery>,
}

impl CompiledXPath {
    /// Compiles an already-parsed XPath query.
    pub fn compile(query: XPathQuery) -> Self {
        let positive = compile_to_positive_query(&query);
        let plans = positive
            .disjuncts()
            .iter()
            .map(|disjunct| CompiledQuery::compile(disjunct.clone()))
            .collect();
        CompiledXPath {
            source: query,
            plans,
        }
    }

    /// Parses and compiles an XPath string.
    pub fn parse(text: &str) -> Result<Self, ParseXPathError> {
        Ok(Self::compile(parse_xpath(text)?))
    }

    /// The parsed query this plan was compiled from.
    pub fn source(&self) -> &XPathQuery {
        &self.source
    }

    /// The per-disjunct conjunctive-query plans.
    pub fn plans(&self) -> &[CompiledQuery] {
        &self.plans
    }

    /// Evaluates against a prepared tree: the union of the disjuncts'
    /// monadic answers.
    pub fn execute(&self, prepared: &PreparedTree, scratch: &mut ExecScratch) -> NodeSet {
        let mut out = NodeSet::empty(prepared.tree().len());
        for plan in &self.plans {
            out.union_with(&plan.execute_monadic(prepared, scratch));
        }
        out
    }

    /// Evaluates against a plain tree (no shared caches).
    pub fn eval_on(&self, tree: &Tree, scratch: &mut ExecScratch) -> NodeSet {
        let mut out = NodeSet::empty(tree.len());
        for plan in &self.plans {
            if let cqt_core::Answer::Nodes(nodes) = plan.eval_on(tree, scratch) {
                for node in nodes {
                    out.insert(node);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_xpath;
    use cqt_trees::parse::parse_term;

    #[test]
    fn compiled_xpath_agrees_with_direct_evaluator() {
        let prepared = PreparedTree::new(parse_term("R(A(B), D, C, A(E), C)").unwrap());
        let mut scratch = ExecScratch::new();
        for text in [
            "//A[B]/following::C",
            "//A | //C",
            "//B/parent::A",
            "/descendant-or-self::R[A[B]]",
            "//S[NP and VP]",
        ] {
            let compiled = CompiledXPath::parse(text).unwrap();
            let direct = evaluate_xpath(prepared.tree(), compiled.source());
            assert_eq!(
                compiled.execute(&prepared, &mut scratch),
                direct,
                "prepared mismatch on {text}"
            );
            assert_eq!(
                compiled.eval_on(prepared.tree(), &mut scratch),
                direct,
                "plain mismatch on {text}"
            );
        }
    }

    #[test]
    fn compiled_xpath_observes_document_epochs() {
        use cqt_trees::edit::{EditScript, TreeEdit};
        // One compiled plan, two document epochs: the plan is bound to
        // neither, so executing against each epoch's PreparedTree snapshot
        // yields that epoch's answers — the contract the serving layer's
        // epoch swap relies on.
        let compiled = CompiledXPath::parse("//A[B]/following::C").unwrap();
        let epoch0 = PreparedTree::new(parse_term("R(A(B), D, C)").unwrap());
        let mut scratch = ExecScratch::new();
        assert_eq!(compiled.execute(&epoch0, &mut scratch).len(), 1);
        // Append another C after the existing one: two following C's now.
        let script = EditScript::single(TreeEdit::InsertSubtree {
            parent_pre: 0,
            position: 3,
            subtree: Box::new(parse_term("C").unwrap()),
        });
        let (tree, summary) = script.apply_to(epoch0.tree()).unwrap();
        let epoch1 = epoch0.prepare_edited(tree, &summary);
        assert_ne!(epoch0.structure_hash(), epoch1.structure_hash());
        assert_eq!(compiled.execute(&epoch1, &mut scratch).len(), 2);
        // The old epoch keeps serving its own answers (readers holding the
        // previous snapshot are unaffected by the commit).
        assert_eq!(compiled.execute(&epoch0, &mut scratch).len(), 1);
    }

    #[test]
    fn repeated_execution_is_stable_and_uses_the_label_cache() {
        let prepared = PreparedTree::new(parse_term("R(A(B), D, C, A(E), C)").unwrap());
        let mut scratch = ExecScratch::new();
        let compiled = CompiledXPath::parse("//A[B]/following::C").unwrap();
        let first = compiled.execute(&prepared, &mut scratch);
        for _ in 0..4 {
            assert_eq!(compiled.execute(&prepared, &mut scratch), first);
        }
        let builds = prepared.label_set_builds();
        compiled.execute(&prepared, &mut scratch);
        assert_eq!(prepared.label_set_builds(), builds);
    }
}
