//! Compilation of positive Core XPath into conjunctive queries.
//!
//! Every location path of the fragment compiles into a *monadic, acyclic*
//! conjunctive query (a union of them when predicates use `or` or the query
//! uses `|`), exactly as in the paper's introduction where
//! `//A[B]/following::C` becomes
//!
//! ```text
//! Q(z) :- A(x), Child(x, y), B(y), Following(x, z), C(z).
//! ```
//!
//! Absolute paths: conjunctive queries over trees have no constant for the
//! root, so the leading `/` context is compiled as an unconstrained variable.
//! This is exact for paths that start with `//` or with an explicit
//! `descendant-or-self::` step (the common case, and the form produced by
//! [`crate::emit`]); for a path that starts with `/child::A` it widens the
//! meaning from "A children of the root" to "A nodes with a parent".

use cqt_query::{ConjunctiveQuery, PositiveQuery};

use crate::ast::{LocationPath, NodeTest, Predicate, Step, XPathQuery};

/// Compiles a full XPath query (union of paths) into an equivalent positive
/// query whose disjuncts are acyclic monadic conjunctive queries.
pub fn compile_to_positive_query(query: &XPathQuery) -> PositiveQuery {
    let mut disjuncts = Vec::new();
    for path in &query.paths {
        disjuncts.extend(compile_path(path));
    }
    PositiveQuery::from_disjuncts(disjuncts)
}

/// A compilation context: the branch set (one conjunctive query per
/// `or`-choice made so far) plus a counter for generating shared variable
/// names. Variables are addressed by *name* so that branches whose internal
/// variable numbering diverged (after an `or`) stay consistent.
struct Compiler {
    branches: Vec<ConjunctiveQuery>,
    next_var: usize,
}

impl Compiler {
    fn new() -> Self {
        Compiler {
            branches: vec![ConjunctiveQuery::new()],
            next_var: 0,
        }
    }

    fn fresh_name(&mut self) -> String {
        let name = format!("v{}", self.next_var);
        self.next_var += 1;
        name
    }

    /// Adds one step anchored at the variable named `context` to every
    /// branch; returns the name of the variable holding the step's result.
    fn compile_step(&mut self, context: &str, step: &Step) -> String {
        let target = self.fresh_name();
        for branch in &mut self.branches {
            let ctx_var = branch.var(context);
            let target_var = branch.var(&target);
            branch.add_axis(step.axis, ctx_var, target_var);
            if let NodeTest::Label(label) = &step.node_test {
                branch.add_label(target_var, label);
            }
        }
        for predicate in &step.predicates {
            self.compile_predicate(&target, predicate);
        }
        target
    }

    /// Adds a predicate anchored at the variable named `context` to every
    /// branch; `or` duplicates the branch set.
    fn compile_predicate(&mut self, context: &str, predicate: &Predicate) {
        match predicate {
            Predicate::Path(path) => {
                let mut current = context.to_owned();
                for step in &path.steps {
                    current = self.compile_step(&current, step);
                }
            }
            Predicate::And(a, b) => {
                self.compile_predicate(context, a);
                self.compile_predicate(context, b);
            }
            Predicate::Or(a, b) => {
                let saved = self.branches.clone();
                let saved_counter = self.next_var;
                self.compile_predicate(context, a);
                let left = std::mem::replace(&mut self.branches, saved);
                // Both alternatives use the same fresh-name stream so that a
                // later step never reuses a name already present in one side.
                let after_left = self.next_var;
                self.next_var = saved_counter;
                self.compile_predicate(context, b);
                self.next_var = self.next_var.max(after_left);
                self.branches.extend(left);
            }
        }
    }
}

/// Compiles a single location path into one acyclic conjunctive query per
/// `or`-branch of its predicates.
pub fn compile_path(path: &LocationPath) -> Vec<ConjunctiveQuery> {
    let mut compiler = Compiler::new();
    let mut current = "ctx".to_owned();
    for branch in &mut compiler.branches {
        branch.var(&current);
    }
    for step in &path.steps {
        current = compiler.compile_step(&current, step);
    }
    let mut branches = compiler.branches;
    for branch in &mut branches {
        let head = branch
            .find_var(&current)
            .expect("result variable exists in every branch");
        branch.set_head(vec![head]);
    }
    branches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_xpath;
    use crate::parser::parse_xpath;
    use cqt_core::{Answer, Engine};
    use cqt_trees::generate::{random_tree, RandomTreeConfig};
    use cqt_trees::parse::parse_term;
    use cqt_trees::{Axis, Tree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Compares direct XPath evaluation with evaluation of the compiled
    /// positive query on `tree`.
    fn cross_check(tree: &Tree, xpath: &str) {
        let parsed = parse_xpath(xpath).unwrap();
        let direct: Vec<_> = evaluate_xpath(tree, &parsed).iter().collect();
        let compiled = compile_to_positive_query(&parsed);
        assert!(compiled.is_acyclic(), "compiled queries must be acyclic");
        match Engine::new().eval_positive(tree, &compiled) {
            Answer::Nodes(nodes) => assert_eq!(
                nodes,
                direct,
                "mismatch for {xpath} on {}",
                cqt_trees::parse::to_term(tree)
            ),
            other => panic!("expected node answer, got {other:?}"),
        }
    }

    #[test]
    fn introduction_example_compiles_to_the_expected_query() {
        let parsed = parse_xpath("//A[B]/following::C").unwrap();
        let compiled = compile_to_positive_query(&parsed);
        assert_eq!(compiled.len(), 1);
        let q = &compiled.disjuncts()[0];
        assert!(q.is_monadic());
        assert!(q.is_acyclic());
        // Same atom structure as the paper's Q(z): three labels, and the
        // Child / Following / leading descendant-or-self axes.
        assert_eq!(q.label_atom_count(), 3);
        assert!(q.signature().contains(Axis::Child));
        assert!(q.signature().contains(Axis::Following));
    }

    #[test]
    fn cross_checks_on_fixed_trees() {
        let tree = parse_term("R(A(B, C), D(A(B), C), A(E), C)").unwrap();
        for xpath in [
            "//A",
            "//A[B]",
            "//A[B]/following::C",
            "//A/following-sibling::C",
            "//D/A[B]/parent::D",
            "/descendant-or-self::R[A[B] and A[E]]",
            "//A[B or E]",
            "//B | //E",
            "//A/ancestor::*",
            "C",
        ] {
            cross_check(&tree, xpath);
        }
    }

    #[test]
    fn cross_checks_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(101);
        let config = RandomTreeConfig {
            nodes: 30,
            alphabet: ["A", "B", "C", "D", "E"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ..RandomTreeConfig::default()
        };
        let queries = [
            "//A[B]/following::C",
            "//A//B",
            "//A[.//C]",
            "//B/following-sibling::*[C]",
            "//A[B and C] | //D[E]",
            "//C/preceding::A",
        ];
        for _ in 0..8 {
            let tree = random_tree(&mut rng, &config);
            for xpath in queries {
                cross_check(&tree, xpath);
            }
        }
    }

    #[test]
    fn or_predicates_produce_multiple_disjuncts() {
        let parsed = parse_xpath("//A[B or C]").unwrap();
        let compiled = compile_to_positive_query(&parsed);
        assert_eq!(compiled.len(), 2);
        let parsed = parse_xpath("//A[(B or C) and (D or E)]").unwrap();
        let compiled = compile_to_positive_query(&parsed);
        assert_eq!(compiled.len(), 4);
    }
}
