//! Durable write path: per-document write-ahead logs, periodic snapshots,
//! crash recovery, and a read-only follower.
//!
//! The in-memory corpus loses every committed epoch on restart. This
//! module makes the write path durable with the classic log + snapshot
//! design, using the workspace's own binary codec
//! ([`cqt_trees::codec`]) for payloads:
//!
//! * **Write-ahead log.** Every committed [`EditScript`] is appended to the
//!   document's `wal.log` as a length-prefixed binary record carrying the
//!   commit epoch, the pre- and post-commit [`Tree::structure_digest`], the
//!   encoded script, and a checksum — and the record is **fsync'd before
//!   the epoch swap**, so a commit is durable before it is visible to any
//!   reader.
//! * **Snapshots.** Every `snapshot_every` commits the full tree (plus the
//!   document id and routing tags) is serialized to
//!   `snapshot-<epoch>.snap` (written to a temp file, fsync'd, renamed),
//!   and the log is truncated: the log's only job is to cover the distance
//!   back to the newest snapshot.
//! * **Crash recovery.** [`recover_document`] loads the newest valid
//!   snapshot and replays the log tail, verifying each record's checksum
//!   and digest chain (`record.pre == previous.post`, and the replayed
//!   tree's digest must equal `record.post`). A **truncated final record**
//!   is tolerated — that is exactly what a crash mid-append leaves behind,
//!   and the fsync barrier guarantees no committed epoch is in it — but
//!   **mid-log corruption is refused** with a typed [`RecoveryError`]:
//!   bytes the log claims were durable cannot be quietly dropped.
//! * **Follower.** A [`Follower`] tails a leader's log directory into its
//!   own read-only [`Corpus`], applying new records (or reloading from a
//!   newer snapshot after a leader-side truncation) on every
//!   [`Follower::poll`] — the read-scaling half of the design, checked for
//!   per-epoch answer-fingerprint agreement by the `experiments recover`
//!   harness and the oracle machinery.
//!
//! # Failure model
//!
//! Opening and recovering return typed errors; a running log is
//! **fail-stop**: if an append or fsync fails, the process can no longer
//! guarantee the durable-before-visible invariant, so the writer panics
//! (the same PANIC-on-WAL-failure posture production databases take)
//! rather than serve commits it might lose.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/<sanitized-doc-id>/
//!     wal.log                      magic "CQTW" + version, then records
//!     snapshot-<epoch-20d>.snap    magic "CQTS" + version + body + checksum
//! ```
//!
//! Record layout (all integers little-endian):
//!
//! ```text
//! +-----------+---------------------------------------------+-----------+
//! | len: u32  | body                                        | sum: u64  |
//! |           |   epoch: u64                                | FxHash of |
//! |           |   pre_digest: u64   (chain: prev post)      | body      |
//! |           |   post_digest: u64  (replay must reproduce) |           |
//! |           |   script: cqt_trees::codec bytes            |           |
//! +-----------+---------------------------------------------+-----------+
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::hash::Hasher;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cqt_trees::codec::{self, Reader};
use cqt_trees::edit::EditScript;
use cqt_trees::Tree;
use rustc_hash::FxHasher;

use crate::shard::Corpus;

/// Magic prefix of a write-ahead log file.
const WAL_MAGIC: &[u8; 4] = b"CQTW";
/// Magic prefix of a snapshot file.
const SNAP_MAGIC: &[u8; 4] = b"CQTS";
/// Format version of both files.
const FORMAT_VERSION: u8 = 1;
/// Bytes of a WAL file header (magic + version).
const WAL_HEADER_LEN: u64 = 5;
/// The log file's name inside a document directory. Shared with the
/// replication layer, which streams the same files over the wire.
pub(crate) const WAL_FILE: &str = "wal.log";

/// Whether (and where) a [`Corpus`] persists its write path.
#[derive(Clone, Debug, Default)]
pub enum Durability {
    /// Keep every epoch in memory only (the historical behaviour; all
    /// pre-existing construction paths use this).
    #[default]
    None,
    /// Per-document write-ahead logs and snapshots under `dir`.
    Wal {
        /// Root directory of the log: one subdirectory per document.
        dir: PathBuf,
        /// Snapshot (and truncate the log) every this many commits per
        /// document; `0` disables periodic snapshots (the epoch-0 snapshot
        /// written at insert time is still the recovery base).
        snapshot_every: u64,
    },
}

impl Durability {
    /// WAL durability under `dir` with the default snapshot cadence (32
    /// commits).
    pub fn wal(dir: impl Into<PathBuf>) -> Self {
        Durability::Wal {
            dir: dir.into(),
            snapshot_every: 32,
        }
    }
}

/// Cumulative durability counters of one log (or, summed, of a corpus) —
/// reported over the wire by the `RESP_STATS_V3` stats layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Records currently in the log (since the last truncation).
    pub log_records: u64,
    /// Bytes currently in the log, headers included.
    pub log_bytes: u64,
    /// Epoch of the newest snapshot written (the max across documents when
    /// summed at corpus level).
    pub snapshot_epoch: u64,
}

impl DurabilityStats {
    /// Accumulates another log's counters into this one (records and bytes
    /// add; the snapshot epoch takes the max).
    pub fn absorb(&mut self, other: &DurabilityStats) {
        self.log_records += other.log_records;
        self.log_bytes += other.log_bytes;
        self.snapshot_epoch = self.snapshot_epoch.max(other.snapshot_epoch);
    }
}

/// Why a log directory could not be opened or replayed. Torn **final**
/// records are not errors (they are the expected crash artifact and are
/// dropped); everything here means the durable prefix itself is
/// inconsistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// A filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The operating system's error description.
        detail: String,
    },
    /// A log file exists but does not start with the expected magic and
    /// version — this is not a torn tail, it is the wrong file.
    BadHeader {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with the header.
        detail: String,
    },
    /// No snapshot of the document could be read and verified.
    NoSnapshot {
        /// The document directory searched.
        path: PathBuf,
    },
    /// A record **before the end of the log** failed its checksum or could
    /// not be decoded: mid-log corruption, refused (a torn *final* record
    /// would have been tolerated).
    CorruptRecord {
        /// The log file.
        path: PathBuf,
        /// Zero-based index of the offending record in the log.
        record: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// A record's pre-commit digest does not equal the previous state's
    /// digest: the chain from the snapshot is broken.
    DigestChain {
        /// The log file.
        path: PathBuf,
        /// Zero-based index of the offending record.
        record: u64,
        /// The digest the chain required.
        expected: u64,
        /// The digest the record carries.
        found: u64,
    },
    /// Replaying a record did not reproduce the post-commit digest it
    /// promised (or the script failed to apply at all).
    Replay {
        /// The log file.
        path: PathBuf,
        /// Zero-based index of the offending record.
        record: u64,
        /// What went wrong during replay.
        detail: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io { path, detail } => {
                write!(f, "i/o on {}: {detail}", path.display())
            }
            RecoveryError::BadHeader { path, detail } => {
                write!(f, "bad log header in {}: {detail}", path.display())
            }
            RecoveryError::NoSnapshot { path } => {
                write!(f, "no valid snapshot under {}", path.display())
            }
            RecoveryError::CorruptRecord {
                path,
                record,
                detail,
            } => write!(
                f,
                "corrupt record {record} (not the final record) in {}: {detail}",
                path.display()
            ),
            RecoveryError::DigestChain {
                path,
                record,
                expected,
                found,
            } => write!(
                f,
                "digest chain broken at record {record} in {}: expected pre-digest \
                 {expected:#018x}, found {found:#018x}",
                path.display()
            ),
            RecoveryError::Replay {
                path,
                record,
                detail,
            } => write!(
                f,
                "replay of record {record} in {} failed: {detail}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

fn io_err(path: &Path, error: std::io::Error) -> RecoveryError {
    RecoveryError::Io {
        path: path.to_path_buf(),
        detail: error.to_string(),
    }
}

/// Maps a document id to a filesystem-safe directory name: ASCII
/// alphanumerics and `-._` pass through, every other byte becomes `%XX`.
/// Unambiguous (so distinct ids never collide), but the authoritative id
/// is the one stored inside the snapshot, not the directory name.
pub(crate) fn sanitize_doc_id(id: &str) -> String {
    let mut out = String::with_capacity(id.len());
    for byte in id.bytes() {
        if byte.is_ascii_alphanumeric() || matches!(byte, b'-' | b'.' | b'_') {
            out.push(byte as char);
        } else {
            out.push('%');
            out.push_str(&format!("{byte:02X}"));
        }
    }
    out
}

fn checksum(body: &[u8]) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write(body);
    hasher.finish()
}

/// Best-effort directory fsync so a rename is durable before we rely on
/// it. Ignored on failure: some filesystems refuse to open directories,
/// and the data file itself is already synced.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

// ---- snapshots ----

fn snapshot_file_name(epoch: u64) -> String {
    // Zero-padded so lexical order is epoch order.
    format!("snapshot-{epoch:020}.snap")
}

fn snapshot_epoch_of(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Writes a snapshot of (`doc_id`, `tags`, `epoch`, `tree`) into `doc_dir`
/// atomically (temp file + fsync + rename) and returns its path.
fn write_snapshot(
    doc_dir: &Path,
    doc_id: &str,
    tags: &[String],
    epoch: u64,
    tree: &Tree,
) -> std::io::Result<PathBuf> {
    let mut body = Vec::new();
    body.extend_from_slice(&(doc_id.len() as u32).to_le_bytes());
    body.extend_from_slice(doc_id.as_bytes());
    body.extend_from_slice(&(tags.len() as u32).to_le_bytes());
    for tag in tags {
        body.extend_from_slice(&(tag.len() as u32).to_le_bytes());
        body.extend_from_slice(tag.as_bytes());
    }
    body.extend_from_slice(&epoch.to_le_bytes());
    body.extend_from_slice(&tree.structure_digest().to_le_bytes());
    codec::encode_tree(tree, &mut body);

    let mut file_bytes = Vec::with_capacity(body.len() + 17);
    file_bytes.extend_from_slice(SNAP_MAGIC);
    file_bytes.push(FORMAT_VERSION);
    file_bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    file_bytes.extend_from_slice(&body);
    file_bytes.extend_from_slice(&checksum(&body).to_le_bytes());

    let final_path = doc_dir.join(snapshot_file_name(epoch));
    let tmp_path = doc_dir.join(format!("{}.tmp", snapshot_file_name(epoch)));
    let mut tmp = File::create(&tmp_path)?;
    tmp.write_all(&file_bytes)?;
    tmp.sync_all()?;
    drop(tmp);
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(doc_dir);
    Ok(final_path)
}

/// One decoded, verified snapshot. `pub(crate)` because the replication
/// layer streams snapshots over the wire for followers behind truncation.
pub(crate) struct Snapshot {
    pub(crate) doc_id: String,
    pub(crate) tags: Vec<String>,
    pub(crate) epoch: u64,
    pub(crate) digest: u64,
    pub(crate) tree: Tree,
}

/// Reads and fully verifies one snapshot file (checksum and digest).
fn read_snapshot(path: &Path) -> Result<Snapshot, RecoveryError> {
    let corrupt = |detail: String| RecoveryError::BadHeader {
        path: path.to_path_buf(),
        detail,
    };
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    if bytes.len() < 9 || &bytes[0..4] != SNAP_MAGIC {
        return Err(corrupt("missing snapshot magic".into()));
    }
    if bytes[4] != FORMAT_VERSION {
        return Err(corrupt(format!(
            "unsupported snapshot version {}",
            bytes[4]
        )));
    }
    let body_len = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes")) as usize;
    if bytes.len() != 9 + body_len + 8 {
        return Err(corrupt(format!(
            "snapshot length {} does not match declared body of {body_len}",
            bytes.len()
        )));
    }
    let body = &bytes[9..9 + body_len];
    let sum = u64::from_le_bytes(bytes[9 + body_len..].try_into().expect("8 bytes"));
    if checksum(body) != sum {
        return Err(corrupt("snapshot checksum mismatch".into()));
    }
    let mut r = Reader::new(body);
    let parse = |detail: codec::CodecError| corrupt(format!("snapshot body: {detail}"));
    let doc_id = r.string().map_err(parse)?;
    let tag_count = r.u32().map_err(parse)? as usize;
    let mut tags = Vec::with_capacity(tag_count.min(r.remaining()));
    for _ in 0..tag_count {
        tags.push(r.string().map_err(parse)?);
    }
    let epoch = r.u64().map_err(parse)?;
    let digest = r.u64().map_err(parse)?;
    let tree = codec::decode_tree_from(&mut r).map_err(parse)?;
    r.finish().map_err(parse)?;
    if tree.structure_digest() != digest {
        return Err(corrupt(
            "snapshot tree does not match its recorded digest".into(),
        ));
    }
    Ok(Snapshot {
        doc_id,
        tags,
        epoch,
        digest,
        tree,
    })
}

// ---- the write-ahead log ----

/// One parsed (checksum-verified) log record; the script stays encoded
/// until replay so decode failures can be attributed to the right record.
#[derive(Debug)]
pub(crate) struct WalRecord {
    /// The epoch this record's commit created.
    pub(crate) epoch: u64,
    /// `structure_digest` of the tree the script was applied to.
    pub(crate) pre_digest: u64,
    /// `structure_digest` of the tree the commit produced.
    pub(crate) post_digest: u64,
    /// The committed script, in [`cqt_trees::codec`] encoding.
    pub(crate) script: Vec<u8>,
}

/// Encodes one record exactly as [`DocWal::append`] writes it to disk:
/// `u32 body_len | body (epoch, pre, post, script) | u64 checksum`, all
/// little-endian. The replication layer ships these frames verbatim inside
/// wire messages so a follower verifies the same checksum the durable log
/// carries.
pub(crate) fn wal_record_frame(record: &WalRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(24 + record.script.len());
    body.extend_from_slice(&record.epoch.to_le_bytes());
    body.extend_from_slice(&record.pre_digest.to_le_bytes());
    body.extend_from_slice(&record.post_digest.to_le_bytes());
    body.extend_from_slice(&record.script);
    frame_wal_body(&body)
}

/// Wraps an encoded record body in the on-disk frame (length prefix +
/// checksum).
fn frame_wal_body(body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(body.len() + 12);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    frame.extend_from_slice(&checksum(body).to_le_bytes());
    frame
}

/// Parses one record frame received over the wire, verifying the length
/// prefix and the u64 checksum — the exact framing [`read_wal`] verifies on
/// disk. Errors are strings because the caller attributes them to a wire
/// peer, not a file.
pub(crate) fn wal_record_from_frame(bytes: &[u8]) -> Result<WalRecord, String> {
    if bytes.len() < 4 {
        return Err("record frame shorter than its length prefix".into());
    }
    let body_len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    if bytes.len() != 4 + body_len + 8 {
        return Err(format!(
            "record frame of {} bytes does not match declared body of {body_len}",
            bytes.len()
        ));
    }
    let body = &bytes[4..4 + body_len];
    let sum = u64::from_le_bytes(bytes[4 + body_len..].try_into().expect("8 bytes"));
    if checksum(body) != sum {
        return Err("record checksum mismatch".into());
    }
    let mut r = Reader::new(body);
    let field = |e: codec::CodecError| format!("record fields: {e}");
    let epoch = r.u64().map_err(field)?;
    let pre_digest = r.u64().map_err(field)?;
    let post_digest = r.u64().map_err(field)?;
    let script = r.take(r.remaining()).expect("remaining bytes").to_vec();
    Ok(WalRecord {
        epoch,
        pre_digest,
        post_digest,
        script,
    })
}

impl WalRecord {
    /// Decodes the script, mapping failures to [`RecoveryError`] at
    /// `record` in `path`.
    pub(crate) fn decode_script(
        &self,
        path: &Path,
        record: u64,
    ) -> Result<EditScript, RecoveryError> {
        codec::script_from_bytes(&self.script).map_err(|e| RecoveryError::CorruptRecord {
            path: path.to_path_buf(),
            record,
            detail: format!("script: {e}"),
        })
    }
}

/// The parse of one log file: the verified records, how many bytes of the
/// file they cover, and how many trailing torn bytes were dropped.
#[derive(Debug)]
pub(crate) struct WalContents {
    pub(crate) records: Vec<WalRecord>,
    /// Bytes of valid prefix (header + whole records); the reopen path
    /// truncates the file to this length.
    pub(crate) valid_bytes: u64,
    /// Torn trailing bytes past the valid prefix (0 after a clean
    /// shutdown).
    pub(crate) torn_bytes: u64,
}

/// Parses a log file, tolerating a torn tail and refusing mid-log
/// corruption. A missing file parses as empty (the crash window between
/// directory creation and header write).
pub(crate) fn read_wal(path: &Path) -> Result<WalContents, RecoveryError> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err(path, e)),
    };
    if bytes.len() < WAL_HEADER_LEN as usize {
        // The header itself was torn: no record can have been made durable
        // before it, so the whole file is a (tolerated) torn tail.
        return Ok(WalContents {
            records: Vec::new(),
            valid_bytes: 0,
            torn_bytes: bytes.len() as u64,
        });
    }
    if &bytes[0..4] != WAL_MAGIC {
        return Err(RecoveryError::BadHeader {
            path: path.to_path_buf(),
            detail: "missing WAL magic".into(),
        });
    }
    if bytes[4] != FORMAT_VERSION {
        return Err(RecoveryError::BadHeader {
            path: path.to_path_buf(),
            detail: format!("unsupported WAL version {}", bytes[4]),
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break;
        }
        // A record needs its length header, body, and checksum in full;
        // anything shorter is a torn tail — unless more bytes follow it,
        // which read_frame below rules out by construction (we stop at the
        // first incomplete record).
        if remaining < 4 {
            return Ok(torn(records, pos as u64, remaining as u64));
        }
        let body_len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if remaining < 4 + body_len + 8 {
            return Ok(torn(records, pos as u64, remaining as u64));
        }
        let body = &bytes[pos + 4..pos + 4 + body_len];
        let sum = u64::from_le_bytes(
            bytes[pos + 4 + body_len..pos + 4 + body_len + 8]
                .try_into()
                .expect("8 bytes"),
        );
        let record_end = pos + 4 + body_len + 8;
        if checksum(body) != sum {
            if record_end == bytes.len() {
                // A checksum-failing *final* record is a torn overwrite of
                // the tail: tolerated, dropped.
                return Ok(torn(records, pos as u64, remaining as u64));
            }
            return Err(RecoveryError::CorruptRecord {
                path: path.to_path_buf(),
                record: records.len() as u64,
                detail: "checksum mismatch before the end of the log".into(),
            });
        }
        let mut r = Reader::new(body);
        let field = |e: codec::CodecError, at: usize| RecoveryError::CorruptRecord {
            path: path.to_path_buf(),
            record: at as u64,
            detail: format!("record fields: {e}"),
        };
        let epoch = r.u64().map_err(|e| field(e, records.len()))?;
        let pre_digest = r.u64().map_err(|e| field(e, records.len()))?;
        let post_digest = r.u64().map_err(|e| field(e, records.len()))?;
        let script = r.take(r.remaining()).expect("remaining bytes").to_vec();
        records.push(WalRecord {
            epoch,
            pre_digest,
            post_digest,
            script,
        });
        pos = record_end;
    }
    Ok(WalContents {
        records,
        valid_bytes: pos as u64,
        torn_bytes: 0,
    })
}

fn torn(records: Vec<WalRecord>, valid: u64, torn: u64) -> WalContents {
    WalContents {
        records,
        valid_bytes: valid,
        torn_bytes: torn,
    }
}

/// One document's live write-ahead log: owned by its
/// [`crate::corpus::CorpusHandle`], appended (and fsync'd) inside the
/// commit path *before* the epoch swap. See the [module docs](self) for
/// the failure model (fail-stop on append errors).
#[derive(Debug)]
pub(crate) struct DocWal {
    doc_id: String,
    tags: Vec<String>,
    doc_dir: PathBuf,
    wal_path: PathBuf,
    snapshot_every: u64,
    file: Mutex<File>,
    log_records: AtomicU64,
    log_bytes: AtomicU64,
    snapshot_epoch: AtomicU64,
}

impl DocWal {
    /// Creates a fresh document log under `root`: its directory, the
    /// epoch-0 snapshot of `tree`, and an empty log file, all fsync'd.
    pub(crate) fn create(
        root: &Path,
        doc_id: &str,
        tags: &[String],
        snapshot_every: u64,
        tree: &Tree,
    ) -> std::io::Result<DocWal> {
        let doc_dir = root.join(sanitize_doc_id(doc_id));
        fs::create_dir_all(&doc_dir)?;
        write_snapshot(&doc_dir, doc_id, tags, 0, tree)?;
        let wal_path = doc_dir.join(WAL_FILE);
        let mut file = File::create(&wal_path)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&[FORMAT_VERSION])?;
        file.sync_all()?;
        sync_dir(&doc_dir);
        Ok(DocWal {
            doc_id: doc_id.to_string(),
            tags: tags.to_vec(),
            doc_dir,
            wal_path,
            snapshot_every,
            file: Mutex::new(file),
            log_records: AtomicU64::new(0),
            log_bytes: AtomicU64::new(WAL_HEADER_LEN),
            snapshot_epoch: AtomicU64::new(0),
        })
    }

    /// Reopens a recovered document's log for appending: the torn tail (if
    /// any) is truncated away and the counters resume from the recovered
    /// state.
    pub(crate) fn reopen(
        root: &Path,
        recovered: &RecoveredDocument,
        snapshot_every: u64,
    ) -> std::io::Result<DocWal> {
        let doc_dir = root.join(sanitize_doc_id(&recovered.doc_id));
        let wal_path = doc_dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)?;
        let mut valid_bytes = recovered.wal_valid_bytes;
        if valid_bytes < WAL_HEADER_LEN {
            // The header itself was torn (or the file was missing):
            // rewrite it from scratch.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            file.write_all(&[FORMAT_VERSION])?;
            valid_bytes = WAL_HEADER_LEN;
        } else {
            file.set_len(valid_bytes)?;
            file.seek(SeekFrom::Start(valid_bytes))?;
        }
        file.sync_all()?;
        Ok(DocWal {
            doc_id: recovered.doc_id.clone(),
            tags: recovered.tags.clone(),
            doc_dir,
            wal_path,
            snapshot_every,
            file: Mutex::new(file),
            log_records: AtomicU64::new(recovered.wal_records),
            log_bytes: AtomicU64::new(valid_bytes),
            snapshot_epoch: AtomicU64::new(recovered.snapshot_epoch),
        })
    }

    /// Appends one commit record and fsyncs it. Called by the commit path
    /// **before** the epoch swap; panics on I/O failure (fail-stop — see
    /// the [module docs](self)).
    pub(crate) fn append(
        &self,
        epoch: u64,
        pre_digest: u64,
        post_digest: u64,
        script: &EditScript,
    ) {
        let mut body = Vec::new();
        body.extend_from_slice(&epoch.to_le_bytes());
        body.extend_from_slice(&pre_digest.to_le_bytes());
        body.extend_from_slice(&post_digest.to_le_bytes());
        codec::encode_script(script, &mut body);
        let frame = frame_wal_body(&body);
        let mut file = self.file.lock().expect("wal file lock poisoned");
        file.write_all(&frame)
            .and_then(|()| file.sync_data())
            .unwrap_or_else(|e| {
                panic!(
                    "WAL append failed for {}: {e} — cannot guarantee durability, aborting",
                    self.wal_path.display()
                )
            });
        self.log_records.fetch_add(1, Ordering::Relaxed);
        self.log_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
    }

    /// After the epoch swap: snapshots `tree` and truncates the log if
    /// `epoch` hits the snapshot cadence. Panics on I/O failure
    /// (fail-stop).
    pub(crate) fn maybe_snapshot(&self, epoch: u64, tree: &Tree) {
        if self.snapshot_every == 0 || epoch == 0 || epoch % self.snapshot_every != 0 {
            return;
        }
        let mut file = self.file.lock().expect("wal file lock poisoned");
        write_snapshot(&self.doc_dir, &self.doc_id, &self.tags, epoch, tree)
            .and_then(|_| {
                // Every record in the log is now covered by the snapshot:
                // truncate back to the bare header.
                file.set_len(WAL_HEADER_LEN)?;
                file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
                file.sync_all()
            })
            .unwrap_or_else(|e| {
                panic!(
                    "snapshot at epoch {epoch} failed for {}: {e} — aborting",
                    self.doc_dir.display()
                )
            });
        self.log_records.store(0, Ordering::Relaxed);
        self.log_bytes.store(WAL_HEADER_LEN, Ordering::Relaxed);
        self.snapshot_epoch.store(epoch, Ordering::Relaxed);
        // Older snapshots are superseded; losing this cleanup is harmless.
        if let Ok(entries) = fs::read_dir(&self.doc_dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if let Some(e) = name.to_str().and_then(snapshot_epoch_of) {
                    if e < epoch {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
    }

    /// Removes the document's directory from disk (used by corpus-level
    /// document removal). Best-effort.
    pub(crate) fn remove_dir(&self) {
        let _ = fs::remove_dir_all(&self.doc_dir);
    }

    /// This log's cumulative counters.
    pub(crate) fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            log_records: self.log_records.load(Ordering::Relaxed),
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
            snapshot_epoch: self.snapshot_epoch.load(Ordering::Relaxed),
        }
    }
}

// ---- recovery ----

/// The outcome of recovering one document directory: the state as of the
/// durable prefix, plus everything needed to resume logging.
#[derive(Clone, Debug)]
pub struct RecoveredDocument {
    /// The document id (from the snapshot, not the directory name).
    pub doc_id: String,
    /// The document's routing tags.
    pub tags: Vec<String>,
    /// The recovered epoch (snapshot epoch + replayed records).
    pub epoch: u64,
    /// The recovered tree.
    pub tree: Tree,
    /// Epoch of the snapshot recovery started from.
    pub snapshot_epoch: u64,
    /// Log records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Torn trailing bytes dropped from the log (0 after a clean
    /// shutdown).
    pub torn_bytes: u64,
    /// Records in the valid log prefix (including any below the snapshot
    /// epoch that were skipped rather than replayed).
    pub wal_records: u64,
    /// Bytes of the valid log prefix.
    pub wal_valid_bytes: u64,
}

/// The newest verified snapshot of a document directory; older snapshots
/// are fallbacks (they can linger if a crash interrupted the post-snapshot
/// cleanup). Shared by [`recover_document`] and the replication layer's
/// leader-side scan.
pub(crate) fn newest_snapshot(doc_dir: &Path) -> Result<Snapshot, RecoveryError> {
    let mut snapshot_epochs: Vec<u64> = fs::read_dir(doc_dir)
        .map_err(|e| io_err(doc_dir, e))?
        .flatten()
        .filter_map(|entry| entry.file_name().to_str().and_then(snapshot_epoch_of))
        .collect();
    snapshot_epochs.sort_unstable_by(|a, b| b.cmp(a));
    for epoch in snapshot_epochs {
        if let Ok(snap) = read_snapshot(&doc_dir.join(snapshot_file_name(epoch))) {
            return Ok(snap);
        }
    }
    Err(RecoveryError::NoSnapshot {
        path: doc_dir.to_path_buf(),
    })
}

/// Recovers one document directory: newest valid snapshot + verified
/// replay of the log tail. See the [module docs](self) for what is
/// tolerated (torn final records) and what is refused (everything else).
pub fn recover_document(doc_dir: &Path) -> Result<RecoveredDocument, RecoveryError> {
    let snapshot = newest_snapshot(doc_dir)?;
    let wal_path = doc_dir.join(WAL_FILE);
    let contents = read_wal(&wal_path)?;
    let mut tree = snapshot.tree;
    let mut digest = snapshot.digest;
    let mut epoch = snapshot.epoch;
    let mut replayed = 0u64;
    for (index, record) in contents.records.iter().enumerate() {
        if record.epoch <= snapshot.epoch {
            // Covered by the snapshot (a crash between snapshot write and
            // log truncation leaves these behind); checksum-verified but
            // not replayed.
            continue;
        }
        if record.epoch != epoch + 1 {
            return Err(RecoveryError::CorruptRecord {
                path: wal_path.clone(),
                record: index as u64,
                detail: format!(
                    "epoch {} out of sequence (expected {})",
                    record.epoch,
                    epoch + 1
                ),
            });
        }
        if record.pre_digest != digest {
            return Err(RecoveryError::DigestChain {
                path: wal_path.clone(),
                record: index as u64,
                expected: digest,
                found: record.pre_digest,
            });
        }
        let script = record.decode_script(&wal_path, index as u64)?;
        let (next, _summary) = script.apply_to(&tree).map_err(|e| RecoveryError::Replay {
            path: wal_path.clone(),
            record: index as u64,
            detail: e.to_string(),
        })?;
        let next_digest = next.structure_digest();
        if next_digest != record.post_digest {
            return Err(RecoveryError::Replay {
                path: wal_path.clone(),
                record: index as u64,
                detail: format!(
                    "replayed digest {next_digest:#018x} does not match recorded \
                     post-digest {:#018x}",
                    record.post_digest
                ),
            });
        }
        tree = next;
        digest = next_digest;
        epoch = record.epoch;
        replayed += 1;
    }
    Ok(RecoveredDocument {
        doc_id: snapshot.doc_id,
        tags: snapshot.tags,
        epoch,
        tree,
        snapshot_epoch: snapshot.epoch,
        replayed_records: replayed,
        torn_bytes: contents.torn_bytes,
        wal_records: contents.records.len() as u64,
        wal_valid_bytes: contents.valid_bytes,
    })
}

/// Recovers every document directory under `dir`, sorted by directory
/// name. A missing root directory recovers as an empty corpus.
pub fn recover_corpus_dir(dir: &Path) -> Result<Vec<RecoveredDocument>, RecoveryError> {
    let mut doc_dirs: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .flatten()
            .filter(|entry| entry.path().is_dir())
            .map(|entry| entry.path())
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err(dir, e)),
    };
    doc_dirs.sort();
    doc_dirs.iter().map(|d| recover_document(d)).collect()
}

/// Summary of one [`Corpus::open_durable`] recovery, for reports and the
/// `experiments recover` harness.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Per-document recovery outcomes, sorted by document id.
    pub documents: Vec<DocRecovery>,
}

/// One document's slice of a [`RecoveryReport`].
#[derive(Clone, Debug)]
pub struct DocRecovery {
    /// The document id.
    pub doc_id: String,
    /// The epoch the document recovered to.
    pub epoch: u64,
    /// The snapshot epoch recovery started from.
    pub snapshot_epoch: u64,
    /// Log records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Torn trailing bytes dropped from the log.
    pub torn_bytes: u64,
}

impl RecoveryReport {
    /// Total log records replayed across all documents.
    pub fn replayed_records(&self) -> u64 {
        self.documents.iter().map(|d| d.replayed_records).sum()
    }

    /// Total torn bytes dropped across all documents.
    pub fn torn_bytes(&self) -> u64 {
        self.documents.iter().map(|d| d.torn_bytes).sum()
    }
}

// ---- follower ----

/// Per-document tail state of a [`Follower`].
struct FollowerDoc {
    epoch: u64,
    digest: u64,
}

/// A read-only replica that tails a leader's log directory into its own
/// [`Corpus`]. Each [`Follower::poll`] applies the records the leader
/// appended since the last poll (verifying the same checksum/digest chain
/// recovery does), or reloads from the newest snapshot when the leader
/// truncated the log past the follower's position. The follower's corpus
/// is read-only **by contract**: nothing else may commit to it, and the
/// follower itself only applies leader records.
pub struct Follower {
    dir: PathBuf,
    corpus: Arc<Corpus>,
    state: Mutex<BTreeMap<String, FollowerDoc>>,
}

impl Follower {
    /// Opens a follower over the leader log directory `dir`, catching up
    /// to the current durable state immediately.
    pub fn open(dir: impl Into<PathBuf>, shards: usize) -> Result<Follower, RecoveryError> {
        let follower = Follower {
            dir: dir.into(),
            corpus: Arc::new(Corpus::new(shards)),
            state: Mutex::new(BTreeMap::new()),
        };
        follower.poll()?;
        Ok(follower)
    }

    /// The follower's serving corpus. Readers snapshot and evaluate
    /// exactly as against a leader; commits are the follower's own
    /// business only.
    pub fn corpus(&self) -> &Arc<Corpus> {
        &self.corpus
    }

    /// Tails the leader's directory once: applies every new durable
    /// record (and picks up new or removed documents), returning how many
    /// records were applied plus how many documents were (re)loaded from
    /// snapshots.
    pub fn poll(&self) -> Result<FollowerProgress, RecoveryError> {
        let mut state = self.state.lock().expect("follower state lock poisoned");
        let mut progress = FollowerProgress::default();
        let mut seen: Vec<String> = Vec::new();
        let mut doc_dirs: Vec<PathBuf> = match fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .flatten()
                .filter(|entry| entry.path().is_dir())
                .map(|entry| entry.path())
                .collect(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(&self.dir, e)),
        };
        doc_dirs.sort();
        for doc_dir in doc_dirs {
            let wal_path = doc_dir.join(WAL_FILE);
            let contents = read_wal(&wal_path)?;
            // Cheap id probe: the directory name is not authoritative, so
            // full (re)loads go through recover_document; the incremental
            // path only needs the records.
            let known = contents.records.first().and_then(|first| {
                state.iter().find_map(|(id, doc)| {
                    (self.dir.join(sanitize_doc_id(id)) == doc_dir && doc.epoch + 1 >= first.epoch)
                        .then(|| id.clone())
                })
            });
            match known {
                Some(doc_id) => {
                    let doc = state.get_mut(&doc_id).expect("probed above");
                    for (index, record) in contents.records.iter().enumerate() {
                        if record.epoch <= doc.epoch {
                            continue;
                        }
                        if record.pre_digest != doc.digest {
                            return Err(RecoveryError::DigestChain {
                                path: wal_path.clone(),
                                record: index as u64,
                                expected: doc.digest,
                                found: record.pre_digest,
                            });
                        }
                        let script = record.decode_script(&wal_path, index as u64)?;
                        let report = self
                            .corpus
                            .commit(&doc_id.as_str().into(), &script)
                            .map_err(|e| RecoveryError::Replay {
                                path: wal_path.clone(),
                                record: index as u64,
                                detail: e.to_string(),
                            })?;
                        if report.epoch != record.epoch
                            || report.structure_hash != record.post_digest
                        {
                            return Err(RecoveryError::Replay {
                                path: wal_path.clone(),
                                record: index as u64,
                                detail: format!(
                                    "applied epoch {} digest {:#018x}, record says epoch {} \
                                     digest {:#018x}",
                                    report.epoch,
                                    report.structure_hash,
                                    record.epoch,
                                    record.post_digest
                                ),
                            });
                        }
                        doc.epoch = record.epoch;
                        doc.digest = record.post_digest;
                        progress.records_applied += 1;
                    }
                    seen.push(doc_id);
                }
                None => {
                    // New document, or the leader truncated past our
                    // position: full (re)load from the newest snapshot.
                    let recovered = match recover_document(&doc_dir) {
                        Ok(recovered) => recovered,
                        Err(RecoveryError::NoSnapshot { .. }) => {
                            // The snapshot-rotation (or document-creation)
                            // window: the leader has renamed or not yet
                            // renamed a snapshot into place, so no snapshot
                            // is readable *right now*. That is not
                            // corruption and emphatically not a removal —
                            // keep whatever state we hold and retry on the
                            // next poll.
                            if let Some(id) = state
                                .keys()
                                .find(|id| self.dir.join(sanitize_doc_id(id)) == doc_dir)
                                .cloned()
                            {
                                seen.push(id);
                            }
                            continue;
                        }
                        Err(error @ RecoveryError::Io { .. }) => {
                            if fs::metadata(&doc_dir).is_err() {
                                // The directory vanished between the
                                // listing and the read: leave the verdict
                                // to the confirmed-removal pass below.
                                continue;
                            }
                            return Err(error);
                        }
                        Err(error) => return Err(error),
                    };
                    let doc_id = recovered.doc_id.clone();
                    let known_epoch = state.get(&doc_id).map(|d| d.epoch);
                    if known_epoch == Some(recovered.epoch) {
                        seen.push(doc_id);
                        continue;
                    }
                    if known_epoch.is_some() {
                        self.corpus.remove(&doc_id.as_str().into());
                    }
                    let digest = recovered.tree.structure_digest();
                    let epoch = recovered.epoch;
                    self.corpus
                        .insert_recovered(
                            doc_id.as_str(),
                            &recovered.tags,
                            recovered.tree,
                            epoch,
                            None,
                        )
                        .map_err(|e| RecoveryError::Replay {
                            path: doc_dir.clone(),
                            record: 0,
                            detail: e.to_string(),
                        })?;
                    state.insert(doc_id.clone(), FollowerDoc { epoch, digest });
                    progress.documents_loaded += 1;
                    seen.push(doc_id);
                }
            }
        }
        // Documents whose directory disappeared were removed by the
        // leader — but only a *confirmed* absence counts. The directory
        // listing above can transiently miss an entry while the leader is
        // rotating snapshots, and removal is destructive on the follower
        // (the tree and its replay position are dropped), so each
        // candidate is re-probed directly before being removed. A probe
        // that still finds the path — or fails for any reason other than
        // `NotFound` — defers the verdict to the next poll.
        let gone: Vec<String> = state
            .keys()
            .filter(|id| !seen.contains(id))
            .cloned()
            .collect();
        for id in gone {
            match fs::metadata(self.dir.join(sanitize_doc_id(&id))) {
                Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
                    self.corpus.remove(&id.as_str().into());
                    state.remove(&id);
                    progress.documents_removed += 1;
                }
                _ => {}
            }
        }
        Ok(progress)
    }
}

/// What one [`Follower::poll`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FollowerProgress {
    /// Log records applied incrementally.
    pub records_applied: u64,
    /// Documents loaded (or reloaded) from snapshots.
    pub documents_loaded: u64,
    /// Documents dropped because the leader removed them.
    pub documents_removed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqt_trees::edit::TreeEdit;
    use cqt_trees::parse::parse_term;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cqt-durability-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn relabel(node_pre: u32, label: &str) -> EditScript {
        EditScript::single(TreeEdit::Relabel {
            node_pre,
            labels: vec![label.into()],
        })
    }

    #[test]
    fn sanitization_is_injective_on_interesting_ids() {
        let ids = ["doc-1", "doc/1", "doc%1", "../../etc", "päper", "a b"];
        let mut seen = std::collections::BTreeSet::new();
        for id in ids {
            let s = sanitize_doc_id(id);
            assert!(
                s.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'%')),
                "{s}"
            );
            assert!(!s.contains('/'));
            assert!(seen.insert(s), "collision on {id}");
        }
    }

    #[test]
    fn wal_appends_parse_back_and_tolerate_torn_tails() {
        let root = temp_dir("torn");
        let tree = parse_term("R(A(B), C)").unwrap();
        let wal = DocWal::create(&root, "doc", &[], 0, &tree).unwrap();
        let mut current = tree.clone();
        for (epoch, label) in [(1u64, "X"), (2, "Y"), (3, "Z")] {
            let script = relabel(2, label);
            let (next, _) = script.apply_to(&current).unwrap();
            wal.append(
                epoch,
                current.structure_digest(),
                next.structure_digest(),
                &script,
            );
            current = next;
        }
        let wal_path = root.join("doc").join(WAL_FILE);
        let contents = read_wal(&wal_path).unwrap();
        assert_eq!(contents.records.len(), 3);
        assert_eq!(contents.torn_bytes, 0);
        assert_eq!(wal.stats().log_records, 3);
        assert_eq!(wal.stats().log_bytes, contents.valid_bytes);

        // Truncating at every byte offset inside the last record drops
        // exactly that record and reports the torn bytes.
        let full = fs::read(&wal_path).unwrap();
        let second_end = {
            let two = read_wal(&wal_path).unwrap();
            // valid prefix of two records = full minus the last frame.
            let last_frame = two.records[2].script.len() + 8 + 8 + 8 + 4 + 8;
            full.len() - last_frame
        };
        for cut in second_end + 1..full.len() {
            fs::write(&wal_path, &full[..cut]).unwrap();
            let torn = read_wal(&wal_path).unwrap();
            assert_eq!(torn.records.len(), 2, "cut at {cut}");
            assert_eq!(torn.valid_bytes as usize, second_end);
            assert_eq!(torn.torn_bytes as usize, cut - second_end);
        }

        // Mid-log corruption (a flipped byte in record 0's body) is
        // refused, not truncated away.
        let mut corrupt = full.clone();
        corrupt[WAL_HEADER_LEN as usize + 6] ^= 0xff;
        fs::write(&wal_path, &corrupt).unwrap();
        match read_wal(&wal_path).unwrap_err() {
            RecoveryError::CorruptRecord { record, .. } => assert_eq!(record, 0),
            other => panic!("expected CorruptRecord, got {other}"),
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn recovery_replays_the_log_over_the_snapshot() {
        let root = temp_dir("recover");
        let tree = parse_term("R(A(B), C)").unwrap();
        let tags = vec!["hot".to_string()];
        let wal = DocWal::create(&root, "docs/a", &tags, 0, &tree).unwrap();
        let mut current = tree.clone();
        for (epoch, label) in [(1u64, "X"), (2, "Y")] {
            let script = relabel(3, label);
            let (next, _) = script.apply_to(&current).unwrap();
            wal.append(
                epoch,
                current.structure_digest(),
                next.structure_digest(),
                &script,
            );
            current = next;
        }
        let recovered = recover_document(&root.join(sanitize_doc_id("docs/a"))).unwrap();
        assert_eq!(recovered.doc_id, "docs/a");
        assert_eq!(recovered.tags, tags);
        assert_eq!(recovered.epoch, 2);
        assert_eq!(recovered.snapshot_epoch, 0);
        assert_eq!(recovered.replayed_records, 2);
        assert_eq!(recovered.torn_bytes, 0);
        assert_eq!(
            recovered.tree.structure_digest(),
            current.structure_digest()
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshots_truncate_the_log_and_anchor_recovery() {
        let root = temp_dir("snapshot");
        let tree = parse_term("R(A(B), C)").unwrap();
        // Snapshot every 2 commits.
        let wal = DocWal::create(&root, "doc", &[], 2, &tree).unwrap();
        let mut current = tree.clone();
        for epoch in 1u64..=3 {
            let script = relabel(3, &format!("L{epoch}"));
            let (next, _) = script.apply_to(&current).unwrap();
            wal.append(
                epoch,
                current.structure_digest(),
                next.structure_digest(),
                &script,
            );
            current = next;
            wal.maybe_snapshot(epoch, &current);
        }
        // After the epoch-2 snapshot the log holds only the epoch-3
        // record.
        let stats = wal.stats();
        assert_eq!(stats.snapshot_epoch, 2);
        assert_eq!(stats.log_records, 1);
        let doc_dir = root.join("doc");
        let recovered = recover_document(&doc_dir).unwrap();
        assert_eq!(recovered.snapshot_epoch, 2);
        assert_eq!(recovered.epoch, 3);
        assert_eq!(recovered.replayed_records, 1);
        assert_eq!(
            recovered.tree.structure_digest(),
            current.structure_digest()
        );
        // The old epoch-0 snapshot was cleaned up.
        assert!(!doc_dir.join(snapshot_file_name(0)).exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn digest_chain_breaks_are_typed_errors() {
        let root = temp_dir("chain");
        let tree = parse_term("R(A)").unwrap();
        let wal = DocWal::create(&root, "doc", &[], 0, &tree).unwrap();
        let script = relabel(1, "B");
        let (next, _) = script.apply_to(&tree).unwrap();
        // Lie about the pre-digest: recovery must refuse.
        wal.append(1, 0xbad, next.structure_digest(), &script);
        match recover_document(&root.join("doc")).unwrap_err() {
            RecoveryError::DigestChain { record, found, .. } => {
                assert_eq!(record, 0);
                assert_eq!(found, 0xbad);
            }
            other => panic!("expected DigestChain, got {other}"),
        }
        let _ = fs::remove_dir_all(&root);
    }
}
