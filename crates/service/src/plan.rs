//! Compiled plans and the signature-keyed plan cache.
//!
//! A [`Plan`] is the executable form of a [`QuerySpec`]: one
//! [`CompiledQuery`] for a conjunctive query, a union of them for an XPath
//! query (one per acyclic disjunct) or for an NP-hard query that the
//! optional CQ→APQ rewrite (Theorem 6.10) turned into an acyclic positive
//! query. The [`PlanCache`] memoizes plans under a [`PlanKey`] — the query's
//! axis signature plus a structural hash — so serving the same query text
//! twice performs exactly one [`SignatureAnalysis`] pass (asserted by the
//! [`PlanCacheStats::analyses`] counter).
//!
//! [`SignatureAnalysis`]: cqt_core::SignatureAnalysis

use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use cqt_core::{Answer, CompiledQuery, EvalStrategy, ExecScratch};
use cqt_query::ConjunctiveQuery;
use cqt_rewrite::rewrite::{rewrite_to_apq_with, RewriteOptions};
use cqt_trees::{Axis, DocSummary, NodeId, NodeSet, PreparedTree};
use cqt_xpath::CompiledXPath;
use rustc_hash::{FxHashMap, FxHasher};

use crate::workload::QuerySpec;

/// Options for the compile phase of the serving layer.
#[derive(Clone, Debug)]
pub struct PlanOptions {
    /// The engine strategy compiled plans use (default: automatic).
    pub strategy: EvalStrategy,
    /// Rewrite NP-hard cyclic queries into acyclic positive queries
    /// (Theorem 6.10) at plan time, so execution runs backtrack-free
    /// Yannakakis passes instead of MAC search. Off by default: the rewrite
    /// can be exponential (Theorem 7.1); plans fall back to MAC when the
    /// disjunct cap is hit.
    pub rewrite_nphard: bool,
    /// Disjunct cap for the NP-hard rewrite.
    pub rewrite_max_disjuncts: usize,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            strategy: EvalStrategy::Auto,
            rewrite_nphard: false,
            rewrite_max_disjuncts: 4_096,
        }
    }
}

/// Cache key: the query's axis signature (one bit per axis) plus a
/// structural hash over its head, atoms and labels. Two queries that differ
/// in any atom hash differently; the same text always hashes identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// One bit per [`cqt_trees::Axis`] occurring in the query.
    pub signature: u64,
    /// Structural hash of head, label atoms and axis atoms.
    pub structure: u64,
    /// Structure hash of the document epoch the key is bound to, or 0 for
    /// an unbound (corpus-wide) key. Kept as its own field — rather than
    /// folded into `structure` — so [`PlanCache::evict_document`] can drop
    /// every entry of a superseded epoch.
    pub document: u64,
}

impl PlanKey {
    /// The key of a conjunctive query.
    pub fn of_query(query: &ConjunctiveQuery) -> Self {
        let mut signature = 0u64;
        for axis in query.signature().iter() {
            signature |= 1u64 << axis.index();
        }
        let mut hasher = FxHasher::default();
        hasher.write_usize(query.var_count());
        hasher.write_u8(b'H');
        for &var in query.head() {
            hasher.write_usize(var.index());
        }
        hasher.write_u8(b'L');
        for atom in query.label_atoms() {
            hasher.write_usize(atom.var.index());
            hasher.write(atom.label.as_bytes());
            hasher.write_u8(0);
        }
        hasher.write_u8(b'A');
        for atom in query.axis_atoms() {
            hasher.write_usize(atom.axis.index());
            hasher.write_usize(atom.from.index());
            hasher.write_usize(atom.to.index());
        }
        PlanKey {
            signature,
            structure: hasher.finish(),
            document: 0,
        }
    }

    /// The key of a workload query spec.
    pub fn of_spec(spec: &QuerySpec) -> Self {
        match spec {
            QuerySpec::Cq(query) => Self::of_query(query),
            QuerySpec::XPath(query) => {
                // Hash the XPath surface form; distinct paths compiling to
                // the same CQ shape are rare and a duplicate plan is harmless.
                let mut hasher = FxHasher::default();
                hasher.write(query.to_string().as_bytes());
                PlanKey {
                    signature: u64::MAX,
                    structure: hasher.finish(),
                    document: 0,
                }
            }
        }
    }

    /// Binds the key to a document epoch via its structure hash
    /// ([`cqt_trees::PreparedTree::structure_hash`]). The epoch-aware
    /// serving path ([`crate::runner::ServiceRunner::run_mutating`]) keys
    /// every lookup this way, so a commit — which by construction changes
    /// the structure hash — forces re-preparation: a plan entry created for
    /// the previous epoch can never be returned for the new one. (Plans are
    /// currently document-independent, so the binding costs one redundant
    /// compile per epoch; what it buys is the invalidation discipline — no
    /// future document-dependent planning decision can ever leak across a
    /// commit.) The writer evicts superseded epochs' entries via
    /// [`PlanCache::evict_document`], so the cache stays bounded by the
    /// number of *live* epochs, not the number of commits ever made.
    pub fn with_document(mut self, structure_hash: u64) -> Self {
        self.document = structure_hash;
        self
    }

    /// Folds the compile options into the key. A [`PlanCache`] shared across
    /// runners with different [`PlanOptions`] must not serve one runner a
    /// plan compiled under another's strategy or rewrite settings.
    pub fn with_options(mut self, options: &PlanOptions) -> Self {
        let mut hasher = FxHasher::default();
        hasher.write_u64(self.structure);
        hasher.write_u8(match options.strategy {
            EvalStrategy::Auto => 0,
            EvalStrategy::XProperty => 1,
            EvalStrategy::Mac => 2,
            EvalStrategy::Yannakakis => 3,
            EvalStrategy::Naive => 4,
        });
        hasher.write_u8(u8::from(options.rewrite_nphard));
        if options.rewrite_nphard {
            hasher.write_usize(options.rewrite_max_disjuncts);
        }
        self.structure = hasher.finish();
        self
    }
}

/// An executable plan: one compiled conjunctive query, or a union of
/// compiled disjuncts (XPath unions, rewritten NP-hard queries).
#[derive(Clone, Debug)]
pub struct Plan {
    disjuncts: Vec<CompiledQuery>,
    head_arity: usize,
    /// Labels that must occur on some node of a document for the plan to
    /// have any answer there (sorted). See [`Plan::required_labels`].
    required_labels: Vec<String>,
    /// Non-reflexive axes that must hold between some pair of nodes for the
    /// plan to have any answer. See [`Plan::required_axes`].
    required_axes: Vec<Axis>,
}

impl Plan {
    /// Assembles a plan from compiled disjuncts, deriving the pruning
    /// requirements from their atom lists.
    fn assemble(disjuncts: Vec<CompiledQuery>, head_arity: usize) -> Plan {
        let (required_labels, required_axes) = Plan::requirements(&disjuncts);
        Plan {
            disjuncts,
            head_arity,
            required_labels,
            required_axes,
        }
    }

    /// The labels and non-reflexive axes required by **every** disjunct. The
    /// plan's answer is the union of disjunct answers, so a label (or axis)
    /// is required overall only when each disjunct requires it; a label atom
    /// `L(x)` empties the disjunct on any document without an `L` node, and
    /// an axis atom over an empty axis relation does the same.
    fn requirements(disjuncts: &[CompiledQuery]) -> (Vec<String>, Vec<Axis>) {
        let mut label_req: Option<std::collections::BTreeSet<&str>> = None;
        let mut axis_req = u64::MAX;
        for disjunct in disjuncts {
            let query = disjunct.query();
            let labels: std::collections::BTreeSet<&str> = query
                .label_atoms()
                .iter()
                .map(|atom| atom.label.as_str())
                .collect();
            label_req = Some(match label_req {
                None => labels,
                Some(prev) => prev.intersection(&labels).copied().collect(),
            });
            let mut axes = 0u64;
            for atom in query.axis_atoms() {
                // Reflexive axes hold on every node loop — never prunable.
                if !atom.axis.is_reflexive() {
                    axes |= 1 << atom.axis.index();
                }
            }
            axis_req &= axes;
        }
        // No disjuncts (a rewrite proved the query unsatisfiable): the
        // requirements are irrelevant — `is_always_empty` prunes everything.
        let label_req = label_req.unwrap_or_default();
        let axis_req = if disjuncts.is_empty() { 0 } else { axis_req };
        (
            label_req.into_iter().map(str::to_owned).collect(),
            Axis::ALL
                .iter()
                .copied()
                .filter(|axis| axis_req & (1 << axis.index()) != 0)
                .collect(),
        )
    }
    /// Compiles `spec` under `options`. This is the entire one-time phase:
    /// signature analysis, strategy selection and any rewrite happen here and
    /// never at execution time.
    pub fn compile(spec: &QuerySpec, options: &PlanOptions) -> (Plan, u64) {
        match spec {
            QuerySpec::Cq(query) => {
                let head_arity = query.head_arity();
                let plan = CompiledQuery::compile_with(query.clone(), options.strategy);
                let mut analyses = 1;
                if options.rewrite_nphard
                    && !plan.classification().is_polynomial()
                    && !query.is_acyclic()
                {
                    let rewrite_options = RewriteOptions {
                        max_disjuncts: options.rewrite_max_disjuncts,
                        ..RewriteOptions::default()
                    };
                    if let Ok((apq, _)) = rewrite_to_apq_with(query, &rewrite_options) {
                        if apq.is_acyclic() {
                            let disjuncts: Vec<CompiledQuery> = apq
                                .disjuncts()
                                .iter()
                                .map(|d| CompiledQuery::compile(d.clone()))
                                .collect();
                            analyses += disjuncts.len() as u64;
                            return (Plan::assemble(disjuncts, head_arity), analyses);
                        }
                    }
                }
                (Plan::assemble(vec![plan], head_arity), analyses)
            }
            QuerySpec::XPath(query) => {
                // One pipeline for XPath: reuse the front-end's own
                // prepare/execute compiler rather than re-deriving it here.
                let compiled = CompiledXPath::compile(query.clone());
                let disjuncts = compiled.plans().to_vec();
                let analyses = disjuncts.len() as u64;
                (Plan::assemble(disjuncts, 1), analyses)
            }
        }
    }

    /// The compiled disjuncts (one for a plain conjunctive query).
    pub fn disjuncts(&self) -> &[CompiledQuery] {
        &self.disjuncts
    }

    /// Arity of the answer.
    pub fn head_arity(&self) -> usize {
        self.head_arity
    }

    /// Labels required by every disjunct: a document without one of them
    /// cannot contribute any answer. Sorted, deduplicated; empty when no
    /// label is common to all disjuncts (pruning on labels is then
    /// impossible).
    pub fn required_labels(&self) -> &[String] {
        &self.required_labels
    }

    /// Non-reflexive axes required by every disjunct: a document on which
    /// one of them is an empty relation cannot contribute any answer.
    pub fn required_axes(&self) -> &[Axis] {
        &self.required_axes
    }

    /// Whether the plan has no disjuncts at all (a rewrite proved the query
    /// unsatisfiable) — the answer is empty on every document.
    pub fn is_always_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Whether `summary` rules the document **out**: the plan provably has
    /// an empty answer there, because a required label is absent or a
    /// required axis relation is empty. `false` means the document must be
    /// executed — it says nothing about whether an answer exists.
    pub fn prunes(&self, summary: &DocSummary) -> bool {
        self.is_always_empty()
            || self
                .required_labels
                .iter()
                .any(|label| !summary.has_label(label))
            || self
                .required_axes
                .iter()
                .any(|&axis| !summary.can_satisfy(axis))
    }

    /// The empty answer in this plan's shape — what [`Plan::execute`] returns
    /// on a document with no matches, and what the pruned fan-out path folds
    /// into the gathered fingerprint for documents it never executes.
    pub fn empty_answer(&self) -> Answer {
        match self.head_arity {
            0 => Answer::Boolean(false),
            1 => Answer::Nodes(Vec::new()),
            _ => Answer::Tuples(Vec::new()),
        }
    }

    /// Executes the plan against a prepared tree: the disjuncts' answers,
    /// unioned in the shape matching the head arity.
    pub fn execute(&self, prepared: &PreparedTree, scratch: &mut ExecScratch) -> Answer {
        match self.head_arity {
            0 => Answer::Boolean(
                self.disjuncts
                    .iter()
                    .any(|plan| plan.execute_boolean(prepared, scratch)),
            ),
            1 => {
                let mut nodes = NodeSet::empty(prepared.tree().len());
                for plan in &self.disjuncts {
                    nodes.union_with(&plan.execute_monadic(prepared, scratch));
                }
                Answer::Nodes(nodes.iter().collect())
            }
            _ => {
                let mut tuples: std::collections::BTreeSet<Vec<NodeId>> = Default::default();
                for plan in &self.disjuncts {
                    if let Answer::Tuples(more) = plan.execute(prepared, scratch) {
                        tuples.extend(more);
                    }
                }
                Answer::Tuples(tuples.into_iter().collect())
            }
        }
    }
}

/// Counters of a [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that compiled a new plan.
    pub misses: u64,
    /// Total signature-analysis passes performed (one per compiled
    /// conjunctive query, including rewrite/XPath disjuncts). Serving the
    /// same query twice must not increase this.
    pub analyses: u64,
    /// Hits served to a *different document* than the one that compiled the
    /// entry (only counted on tagged lookups, see
    /// [`PlanCache::get_or_compile_tagged`]). Document-bound keys embed the
    /// document's structure hash, so a cross-document hit can only happen
    /// between documents with **equal structure hashes** — this counter is
    /// the proof that structurally identical documents share plans.
    pub cross_document_hits: u64,
}

/// One cache slot: the spec it was created for (checked on every lookup, so
/// a 64-bit [`PlanKey`] hash collision can never serve the wrong plan) plus
/// the once-compiled plan.
#[derive(Debug)]
struct CacheCell {
    spec: QuerySpec,
    plan: OnceLock<Arc<Plan>>,
    /// Tag of the document whose lookup compiled the plan (0 = untagged).
    /// Later tagged hits with a different tag are cross-document hits.
    owner: AtomicU64,
}

/// A thread-safe memo of compiled plans, keyed by [`PlanKey`] (options
/// folded in via [`PlanKey::with_options`]).
///
/// Shared by every worker of a [`crate::runner::ServiceRunner`] behind an
/// `Arc`. The map only hands out per-key once-cells under its lock;
/// compilation itself runs *outside* the map lock inside the key's cell, so
/// each plan is compiled (and its signature analysed) exactly once no matter
/// how many workers race for it, and a slow compile blocks only requests for
/// that same key — hits on other keys proceed concurrently. Each cell
/// remembers the spec it was compiled from; a lookup whose spec differs
/// (a key collision) compiles uncached instead of serving the wrong plan.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: RwLock<FxHashMap<PlanKey, Arc<CacheCell>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    analyses: AtomicU64,
    cross_document_hits: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the plan of `spec` under `options`, compiling (and memoizing)
    /// it on first use.
    pub fn get_or_compile(&self, spec: &QuerySpec, options: &PlanOptions) -> Arc<Plan> {
        self.get_or_compile_keyed(PlanKey::of_spec(spec).with_options(options), spec, options)
    }

    /// [`PlanCache::get_or_compile`] with a caller-precomputed key — the
    /// serving hot loop hashes each workload query once, not per request.
    ///
    /// `key` must be `PlanKey::of_spec(spec).with_options(options)`; passing
    /// a mismatched key costs a redundant compile but never a wrong answer
    /// (the cell's stored spec is compared on every lookup).
    pub fn get_or_compile_keyed(
        &self,
        key: PlanKey,
        spec: &QuerySpec,
        options: &PlanOptions,
    ) -> Arc<Plan> {
        self.get_or_compile_tagged(key, spec, options, 0)
    }

    /// [`PlanCache::get_or_compile_keyed`] with a caller-supplied **document
    /// tag** (0 = untagged) for cross-document accounting: the tag of the
    /// lookup that compiles a plan is remembered, and a later tagged hit with
    /// a *different* tag increments
    /// [`PlanCacheStats::cross_document_hits`].
    ///
    /// The sharded corpus layer ([`crate::shard::Corpus`]) tags every lookup
    /// with the owning document's identity. Since corpus lookups bind keys to
    /// the document's structure hash ([`PlanKey::with_document`]), a
    /// cross-document hit proves two *distinct* documents with *equal*
    /// structure hashes shared one compiled plan. (Plans are currently
    /// derived from the query alone, so the sharing is trivially sound
    /// today; the counter exists so that if planning ever becomes
    /// data-dependent, the sharing stays observable — and the structure
    /// hash, covering the whole labeled shape, would still be a sound share
    /// key. See [`PlanKey::with_document`] for why keys are document-bound
    /// at all.)
    pub fn get_or_compile_tagged(
        &self,
        key: PlanKey,
        spec: &QuerySpec,
        options: &PlanOptions,
        tag: u64,
    ) -> Arc<Plan> {
        let cell = {
            let plans = self.plans.read().expect("plan cache poisoned");
            plans.get(&key).cloned()
        };
        let cell = cell.unwrap_or_else(|| {
            let mut plans = self.plans.write().expect("plan cache poisoned");
            Arc::clone(plans.entry(key).or_insert_with(|| {
                Arc::new(CacheCell {
                    spec: spec.clone(),
                    plan: OnceLock::new(),
                    owner: AtomicU64::new(0),
                })
            }))
        });
        if cell.spec != *spec {
            // 64-bit key collision: serve a correct, uncached plan.
            let (plan, analyses) = Plan::compile(spec, options);
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.analyses.fetch_add(analyses, Ordering::Relaxed);
            return Arc::new(plan);
        }
        // Compile outside the map lock: only racers for this key block here.
        let mut compiled_now = false;
        let plan = Arc::clone(cell.plan.get_or_init(|| {
            let (plan, analyses) = Plan::compile(spec, options);
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.analyses.fetch_add(analyses, Ordering::Relaxed);
            cell.owner.store(tag, Ordering::Relaxed);
            compiled_now = true;
            Arc::new(plan)
        }));
        if !compiled_now {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if tag != 0 {
                let owner = cell.owner.load(Ordering::Relaxed);
                if owner != 0 && owner != tag {
                    self.cross_document_hits.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        plan
    }

    /// Drops every entry bound (via [`PlanKey::with_document`]) to the
    /// given document epoch, returning how many were removed. Called by the
    /// mutating runner's writer after a commit supersedes an epoch, so the
    /// cache does not grow with the number of commits ever made. Readers
    /// still holding the old epoch's snapshot simply recompile on their next
    /// lookup — a correctness-neutral cost, since lookups never return
    /// entries for a different key.
    pub fn evict_document(&self, document: u64) -> usize {
        if document == 0 {
            // 0 marks *unbound* keys; never sweep those.
            return 0;
        }
        let mut plans = self.plans.write().expect("plan cache poisoned");
        let before = plans.len();
        plans.retain(|key, _| key.document != document);
        before - plans.len()
    }

    /// Number of distinct plans currently cached (including any whose first
    /// compile is still in flight).
    pub fn len(&self) -> usize {
        self.plans.read().expect("plan cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The hit/miss/analysis counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            analyses: self.analyses.load(Ordering::Relaxed),
            cross_document_hits: self.cross_document_hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqt_core::{Engine, SelectedStrategy};
    use cqt_query::cq::figure1_query;
    use cqt_trees::parse::parse_term;

    #[test]
    fn same_query_text_twice_analyses_once() {
        let cache = PlanCache::new();
        let options = PlanOptions::default();
        let first = cache.get_or_compile(
            &QuerySpec::parse_cq("Q(x) :- A(x), Child(x, y), B(y).").unwrap(),
            &options,
        );
        let second = cache.get_or_compile(
            &QuerySpec::parse_cq("Q(x) :- A(x), Child(x, y), B(y).").unwrap(),
            &options,
        );
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.analyses, 1, "one SignatureAnalysis for one text");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_signatures_get_distinct_keys_and_plans() {
        let cache = PlanCache::new();
        let options = PlanOptions::default();
        let tractable = QuerySpec::parse_cq("Q() :- A(x), Child+(x, y), Child*(x, y).").unwrap();
        let hard = QuerySpec::from_cq(figure1_query());
        let acyclic = QuerySpec::parse_cq("Q() :- A(x), Child(x, y), B(y).").unwrap();
        assert_ne!(PlanKey::of_spec(&tractable), PlanKey::of_spec(&hard));
        assert_ne!(PlanKey::of_spec(&tractable), PlanKey::of_spec(&acyclic));
        let t = cache.get_or_compile(&tractable, &options);
        let h = cache.get_or_compile(&hard, &options);
        let a = cache.get_or_compile(&acyclic, &options);
        assert_eq!(t.disjuncts()[0].strategy(), SelectedStrategy::XProperty);
        assert_eq!(h.disjuncts()[0].strategy(), SelectedStrategy::Mac);
        assert_eq!(a.disjuncts()[0].strategy(), SelectedStrategy::Yannakakis);
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.analyses, 3);
        assert_eq!(cache.len(), 3);
        // Re-fetching each is a pure hit.
        cache.get_or_compile(&tractable, &options);
        cache.get_or_compile(&hard, &options);
        assert_eq!(cache.stats().analyses, 3);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn plan_options_are_part_of_the_cache_key() {
        let cache = PlanCache::new();
        let spec = QuerySpec::from_cq(figure1_query());
        let default_options = PlanOptions::default();
        let rewrite_options = PlanOptions {
            rewrite_nphard: true,
            ..PlanOptions::default()
        };
        let mac_plan = cache.get_or_compile(&spec, &default_options);
        let rewritten = cache.get_or_compile(&spec, &rewrite_options);
        assert_eq!(mac_plan.disjuncts().len(), 1);
        assert!(
            rewritten.disjuncts().len() > 1,
            "the rewrite-enabled runner must not be served the MAC plan"
        );
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn structurally_different_queries_over_the_same_signature_differ() {
        let a = QuerySpec::parse_cq("Q() :- A(x), Child(x, y).").unwrap();
        let b = QuerySpec::parse_cq("Q() :- B(x), Child(x, y).").unwrap();
        let c = QuerySpec::parse_cq("Q() :- A(x), Child(y, x).").unwrap();
        let ka = PlanKey::of_spec(&a);
        let kb = PlanKey::of_spec(&b);
        let kc = PlanKey::of_spec(&c);
        assert_eq!(ka.signature, kb.signature);
        assert_ne!(ka.structure, kb.structure);
        assert_ne!(ka.structure, kc.structure);
    }

    #[test]
    fn rewritten_nphard_plan_matches_mac_answers() {
        let tree = parse_term("CORPUS(S(NP(DT, NN), VP(VB, NP(NN), PP(IN, NP(NN)))))").unwrap();
        let expected = Engine::new().eval(&tree, &figure1_query());
        let prepared = PreparedTree::new(tree);
        let options = PlanOptions {
            rewrite_nphard: true,
            ..PlanOptions::default()
        };
        let (plan, analyses) = Plan::compile(&QuerySpec::from_cq(figure1_query()), &options);
        assert!(
            plan.disjuncts().len() > 1,
            "figure 1 query should rewrite into an APQ"
        );
        assert!(analyses as usize > plan.disjuncts().len());
        let mut scratch = ExecScratch::new();
        assert_eq!(plan.execute(&prepared, &mut scratch), expected);
    }

    #[test]
    fn document_bound_keys_miss_after_every_mutation() {
        use crate::corpus::CorpusHandle;
        use cqt_trees::edit::{EditScript, TreeEdit};

        let cache = PlanCache::new();
        let options = PlanOptions::default();
        let spec = QuerySpec::parse_cq("Q(y) :- A(x), Child(x, y), B(y).").unwrap();
        let corpus = CorpusHandle::new(parse_term("R(A(B), C)").unwrap());
        let base = PlanKey::of_spec(&spec).with_options(&options);

        let epoch0 = corpus.snapshot();
        let key0 = base.with_document(epoch0.prepared.structure_hash());
        let plan0 = cache.get_or_compile_keyed(key0, &spec, &options);
        assert_eq!(cache.stats().misses, 1);

        // A structural commit changes the structure hash: the next lookup
        // MUST miss — the epoch-0 entry is unreachable under the new key, so
        // a stale plan can never serve answers for the new epoch.
        corpus
            .commit(&EditScript::single(TreeEdit::InsertSubtree {
                parent_pre: 1,
                position: 1,
                subtree: Box::new(parse_term("B").unwrap()),
            }))
            .unwrap();
        let epoch1 = corpus.snapshot();
        let key1 = base.with_document(epoch1.prepared.structure_hash());
        assert_ne!(key0, key1);
        let plan1 = cache.get_or_compile_keyed(key1, &spec, &options);
        assert!(!Arc::ptr_eq(&plan0, &plan1));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);

        // A relabel-only commit also changes the hash (labels are part of
        // the document), so it too forces re-preparation.
        corpus
            .commit(&EditScript::single(TreeEdit::Relabel {
                node_pre: 4,
                labels: vec!["D".into()],
            }))
            .unwrap();
        let epoch2 = corpus.snapshot();
        let key2 = base.with_document(epoch2.prepared.structure_hash());
        assert_ne!(key1, key2);
        cache.get_or_compile_keyed(key2, &spec, &options);
        assert_eq!(cache.stats().misses, 3);

        // Re-reading any epoch still held by a reader hits its own entry.
        let again = cache.get_or_compile_keyed(key0, &spec, &options);
        assert!(Arc::ptr_eq(&plan0, &again));
        assert_eq!(cache.stats().hits, 1);

        // And each epoch's plan answers correctly against its own tree:
        // epoch 1 gained a second (A-child) B witness.
        let mut scratch = ExecScratch::new();
        let at0 = plan0.execute(&epoch0.prepared, &mut scratch);
        let at1 = plan1.execute(&epoch1.prepared, &mut scratch);
        assert_eq!(at0.len() + 1, at1.len());
    }

    #[test]
    fn evicting_a_document_drops_only_its_entries() {
        let cache = PlanCache::new();
        let options = PlanOptions::default();
        let spec = QuerySpec::parse_cq("Q() :- A(x), Child(x, y).").unwrap();
        let base = PlanKey::of_spec(&spec).with_options(&options);
        let unbound = cache.get_or_compile_keyed(base, &spec, &options);
        cache.get_or_compile_keyed(base.with_document(11), &spec, &options);
        let kept = cache.get_or_compile_keyed(base.with_document(22), &spec, &options);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evict_document(11), 1);
        assert_eq!(cache.len(), 2);
        // Unbound keys are never swept, even by a (pathological) 0 hash.
        assert_eq!(cache.evict_document(0), 0);
        // Survivors still hit; the evicted epoch recompiles as a fresh miss.
        assert!(Arc::ptr_eq(
            &unbound,
            &cache.get_or_compile_keyed(base, &spec, &options)
        ));
        assert!(Arc::ptr_eq(
            &kept,
            &cache.get_or_compile_keyed(base.with_document(22), &spec, &options)
        ));
        let misses_before = cache.stats().misses;
        cache.get_or_compile_keyed(base.with_document(11), &spec, &options);
        assert_eq!(cache.stats().misses, misses_before + 1);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn tagged_lookups_count_cross_document_hits() {
        let cache = PlanCache::new();
        let options = PlanOptions::default();
        let spec = QuerySpec::parse_cq("Q() :- A(x), Child(x, y).").unwrap();
        // Two documents with the same structure hash share one key.
        let key = PlanKey::of_spec(&spec)
            .with_options(&options)
            .with_document(0xfeed);
        let doc_a = 1u64;
        let doc_b = 2u64;
        let first = cache.get_or_compile_tagged(key, &spec, &options, doc_a);
        assert_eq!(cache.stats().cross_document_hits, 0);
        // Same document re-hitting its own entry is not cross-document.
        cache.get_or_compile_tagged(key, &spec, &options, doc_a);
        assert_eq!(cache.stats().cross_document_hits, 0);
        assert_eq!(cache.stats().hits, 1);
        // A different document hitting the shared entry is.
        let shared = cache.get_or_compile_tagged(key, &spec, &options, doc_b);
        assert!(Arc::ptr_eq(&first, &shared));
        assert_eq!(cache.stats().cross_document_hits, 1);
        // Untagged hits never count (no document identity to compare).
        cache.get_or_compile_tagged(key, &spec, &options, 0);
        assert_eq!(cache.stats().cross_document_hits, 1);
        assert_eq!(cache.stats().hits, 3);
        // Distinct structure hashes mean distinct keys: no sharing, and
        // therefore no cross-document hit is possible between them.
        let other = cache.get_or_compile_tagged(
            PlanKey::of_spec(&spec)
                .with_options(&options)
                .with_document(0xbeef),
            &spec,
            &options,
            doc_b,
        );
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(cache.stats().cross_document_hits, 1);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn requirements_are_the_per_disjunct_intersection() {
        let options = PlanOptions::default();
        // A single conjunctive query requires every label and every
        // non-reflexive axis it mentions; `Child*` is reflexive and must
        // not appear.
        let (plan, _) = Plan::compile(
            &QuerySpec::parse_cq("Q(y) :- A(x), Child(x, y), B(y), Child*(x, x).").unwrap(),
            &options,
        );
        assert_eq!(plan.required_labels(), ["A", "B"]);
        assert_eq!(plan.required_axes(), [cqt_trees::Axis::Child]);
        assert!(!plan.is_always_empty());
        // An XPath union only requires what *every* branch requires: here
        // the B label and a Child step (both branches) but neither branch's
        // private parts (A, C).
        let (union, _) =
            Plan::compile(&QuerySpec::parse_xpath("//A/B | //B[C]").unwrap(), &options);
        assert_eq!(union.required_labels(), ["B"]);
        assert_eq!(union.required_axes(), [cqt_trees::Axis::Child]);
    }

    #[test]
    fn prunes_matches_doc_summaries_and_empty_answer_shapes() {
        let options = PlanOptions::default();
        let (plan, _) = Plan::compile(
            &QuerySpec::parse_cq("Q(y) :- A(x), Child(x, y), B(y).").unwrap(),
            &options,
        );
        let with_both = PreparedTree::new(parse_term("A(B)").unwrap());
        let missing_b = PreparedTree::new(parse_term("A(C)").unwrap());
        // A root-only tree cannot satisfy the Child requirement (and also
        // lacks B — either reason alone suffices to prune).
        let no_child = PreparedTree::new(parse_term("A").unwrap());
        assert!(!plan.prunes(with_both.doc_summary()));
        assert!(plan.prunes(missing_b.doc_summary()));
        assert!(plan
            .required_axes()
            .iter()
            .any(|&axis| !no_child.doc_summary().can_satisfy(axis)));
        assert!(plan.prunes(no_child.doc_summary()));
        // Empty answers take the plan's head shape — what the pruned path
        // folds into the gathered fingerprint.
        assert_eq!(plan.empty_answer(), Answer::Nodes(Vec::new()));
        let (boolean, _) = Plan::compile(&QuerySpec::parse_cq("Q() :- A(x).").unwrap(), &options);
        assert_eq!(boolean.empty_answer(), Answer::Boolean(false));
        let (binary, _) = Plan::compile(
            &QuerySpec::parse_cq("Q(x, y) :- A(x), Child(x, y).").unwrap(),
            &options,
        );
        assert_eq!(binary.empty_answer(), Answer::Tuples(Vec::new()));
        // `prunes` is exact on the snapshot it judged: whenever it says
        // prune, executing really does return the empty answer.
        let mut scratch = ExecScratch::new();
        assert_eq!(plan.execute(&missing_b, &mut scratch), plan.empty_answer());
    }

    #[test]
    fn xpath_plans_execute_as_node_sets() {
        let prepared = PreparedTree::new(parse_term("R(A(B), D, C, A(E), C)").unwrap());
        let cache = PlanCache::new();
        let options = PlanOptions::default();
        let spec = QuerySpec::parse_xpath("//A[B]/following::C").unwrap();
        let plan = cache.get_or_compile(&spec, &options);
        let mut scratch = ExecScratch::new();
        let Answer::Nodes(nodes) = plan.execute(&prepared, &mut scratch) else {
            panic!("xpath plans are monadic");
        };
        assert_eq!(nodes.len(), 2);
        cache.get_or_compile(&spec, &options);
        assert_eq!(cache.stats().hits, 1);
    }
}
