//! # cqt-service — the concurrent query-serving layer
//!
//! The paper's engines ([`cqt_core`]) answer one query on one tree. This
//! crate turns them into a serving subsystem shaped like a production query
//! engine's prepare/execute split:
//!
//! * **compile once** — a [`Plan`] runs the whole per-query phase (parse,
//!   [`cqt_core::SignatureAnalysis`] against the Theorem 1.1 dichotomy,
//!   strategy selection, optional CQ→APQ rewrite, XPath→CQ compilation) a
//!   single time; the [`PlanCache`] memoizes plans under a signature +
//!   structure key with hit/miss/analysis counters;
//! * **prepare documents once** — trees enter the workload as
//!   [`cqt_trees::PreparedTree`]s, whose materialized axis relations and
//!   rank-space label sets are built lazily and shared across threads;
//! * **execute many times, in parallel** — a [`ServiceRunner`] shards the
//!   (query, tree) requests of a [`Workload`] over a fixed pool of OS
//!   threads. Plans and prepared trees are shared immutably (`Arc`); all
//!   mutable evaluation state lives in one [`cqt_core::ExecScratch`] per
//!   worker, so evaluation allocates nothing in the steady state and the
//!   only per-request shared access is a brief read-lock on the plan map
//!   (cache keys are hashed once per workload query, and the write lock is
//!   taken only while a plan is missing).
//!
//! * **mutate through epochs** — a [`CorpusHandle`] serves one logical
//!   document as a sequence of immutable epochs: readers snapshot an
//!   `Arc<PreparedTree>` and evaluate lock-free while
//!   [`CorpusHandle::commit`] applies a [`cqt_trees::edit::EditScript`],
//!   carries forward every per-tree cache the edit provably could not
//!   invalidate, and swaps the pointer. Epoch-aware serving binds plan-cache
//!   keys to the epoch's structure hash ([`PlanKey::with_document`]), so a
//!   commit forces re-preparation and a stale plan entry can never serve the
//!   new epoch. [`ServiceRunner::run_mutating`] drives a mixed read/write
//!   stream (one writer, N readers) over such a corpus and records
//!   per-epoch answer observations checkable against a [`MutationOracle`].
//!
//! * **scale to many documents** — a sharded [`Corpus`]
//!   ([`shard`]) maps [`DocId`]s to independently mutable documents
//!   partitioned across shards by id hash: per-document epoch swapping
//!   (a writer to one document never blocks — or is observable by — a
//!   reader of another), scatter–gather fan-out ([`FanOut`]: one document,
//!   a tagged subset, or all) via [`ServiceRunner::run_corpus`], multiple
//!   concurrent writers (at most one per document) via
//!   [`ServiceRunner::run_corpus_mutating`] checked by a per-document
//!   [`CorpusMutationOracle`], and **cross-document plan sharing**:
//!   document-bound plan keys collide exactly for documents with equal
//!   structure hashes, proven live by
//!   [`PlanCacheStats::cross_document_hits`].
//!
//! * **prune before you scatter** — a corpus-wide [`LabelIndex`]
//!   ([`index`]) maps every label to the posting list of documents carrying
//!   it, maintained epoch-consistently by the corpus write path; compiled
//!   plans expose the labels and axes *every* answer requires
//!   ([`Plan::required_labels`] / [`Plan::required_axes`]), so
//!   [`ServiceRunner::run_corpus`] intersects posting lists first and fans
//!   out only to surviving documents. Every pruning decision is re-validated
//!   against the document's own epoch snapshot summary
//!   ([`cqt_trees::DocSummary`]), so pruned runs are answer-fingerprint
//!   identical to unpruned runs — even under concurrent writers — and
//!   [`PruneStats`] reports candidates/pruned/survivors/false-positives.
//!
//! * **batch kindred queries** — a [`BatchWorkload`] ([`batch`]) groups k
//!   queries into one scatter–gather unit: the fan-out resolves once, each
//!   document is snapshot once for the whole batch, repeated specs dedup to
//!   a single plan and execution, a [`cqt_core::BatchPlan`] hash-conses
//!   shared axis chains across the batch's disjuncts into a per-document
//!   shared-step table, and pruning intersects posting lists once for the
//!   batch's **union** label requirements (re-checked per query against the
//!   snapshot summary). [`ServiceRunner::run_batched`] is
//!   answer-fingerprint identical to [`ServiceRunner::run_corpus`] on
//!   [`BatchWorkload::flatten`] — the differential suite holds that
//!   equality across random corpora, vocabularies and live edits.
//!
//! * **survive restarts** — the [`durability`] module gives the corpus a
//!   durable write path: a per-document write-ahead log of committed edit
//!   scripts (fsync'd *before* the epoch swap, so a commit is durable
//!   before it is visible), periodic snapshots bounding the log, typed
//!   crash recovery ([`Corpus::open_durable`]) that replays the log tail
//!   over the newest valid snapshot verifying the `structure_digest`
//!   chain, and a read-only [`Follower`] that tails a leader's log
//!   directory into its own corpus.
//!
//! * **serve over the network** — the [`net`] module puts the corpus behind
//!   a std-only TCP front end: length-prefixed binary frames, pipelined
//!   requests per connection, a bounded admission queue with explicit
//!   load-shedding ([`net::protocol::Response::Shed`], never a silent
//!   drop), and per-request latency split exactly into queue-wait and
//!   execute time. The `experiments net` harness drives it open-loop over
//!   real sockets and cross-checks answer fingerprints against the
//!   in-process [`ServiceRunner::run_corpus`] path.
//!
//! * **replicate across processes** — the [`replication`] module streams
//!   the durable write path over the [`net`] front end: a `REPLICATE`
//!   request subscribes a [`ReplicaFollower`] on another process (or
//!   machine) to a leader's per-document logs, shipping write-ahead-log
//!   records in their exact on-disk framing (checksums and
//!   `structure_digest` chain re-verified on apply) with snapshot
//!   fallback for followers behind the log's truncation horizon, and
//!   reconnect-with-backoff catch-up that never loses applied progress.
//!   Failover is digest-gated: [`ReplicaFollower::promote`] opens the
//!   replica for writes only when its positions exactly match the dead
//!   leader's durable prefix ([`durable_positions`]).
//!
//! The [`ServiceReport`] returned by a run carries throughput (QPS), latency
//! percentiles (p50/p99), an order-independent answer fingerprint for
//! cross-checking runs at different thread counts, and the plan-cache
//! counters — all renderable as JSON for the benchmark harness
//! (`experiments serve`).
//!
//! ```
//! use std::sync::Arc;
//! use cqt_service::{QuerySpec, ServiceConfig, ServiceRunner, Workload};
//! use cqt_trees::{parse::parse_term, PreparedTree};
//!
//! let tree = Arc::new(PreparedTree::new(parse_term("A(B(D), C(D, B))").unwrap()));
//! let workload = Workload::new(
//!     vec![
//!         QuerySpec::parse_cq("Q(y) :- A(x), Child+(x, y), B(y).").unwrap(),
//!         QuerySpec::parse_xpath("//B | //C").unwrap(),
//!     ],
//!     vec![tree],
//!     100,
//! );
//! let report = ServiceRunner::new(ServiceConfig::with_threads(2)).run(&workload);
//! assert_eq!(report.requests, 200);
//! assert_eq!(report.plan_cache.misses, 2); // each plan compiled once
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod corpus;
pub mod durability;
pub mod index;
pub mod net;
pub mod plan;
pub mod replication;
pub mod runner;
pub mod shard;
pub mod stats;
pub mod workload;

pub use batch::{BatchRequest, BatchWorkload, PreparedBatch};
pub use corpus::{CommitReport, CorpusHandle, CorpusSnapshot, MutationOracle};
pub use durability::{
    recover_corpus_dir, recover_document, DocRecovery, Durability, DurabilityStats, Follower,
    FollowerProgress, RecoveredDocument, RecoveryError, RecoveryReport,
};
pub use index::LabelIndex;
pub use net::{NetServer, NetServerConfig, ServerHandle, ServerStats};
pub use plan::{Plan, PlanCache, PlanCacheStats, PlanKey, PlanOptions};
pub use replication::{
    durable_positions, PromoteError, ReplicaError, ReplicaFollower, ReplicaProgress,
};
pub use runner::{ServiceConfig, ServiceRunner};
pub use shard::{Corpus, CorpusError, CorpusMutationOracle, DocId, Document, FanOut};
pub use stats::{
    answer_fingerprint, BatchReport, BatchSharing, CorpusMutationReport, CorpusReport,
    LatencySummary, MutationReport, PruneStats, ServiceReport,
};
pub use workload::{
    CorpusMutationWorkload, CorpusRequest, CorpusWorkload, MutationWorkload, QuerySpec, Workload,
};
