//! The multi-threaded batch runner.
//!
//! [`ServiceRunner::run`] shards a [`Workload`]'s requests over a fixed pool
//! of `std::thread` workers. Workers claim chunks of the request sequence
//! from a shared atomic cursor, resolve each request's plan through the
//! shared [`PlanCache`] (keys are hashed once per workload query up front,
//! so the per-request cost is one brief read-lock on the plan map — the
//! write lock is only ever taken while a plan is missing), and execute
//! against the request's `Arc<PreparedTree>` with a worker-local
//! [`cqt_core::ExecScratch`], so evaluation itself allocates nothing in the
//! steady state beyond the answer.
//!
//! The same pool drives the three other serving modes:
//! [`ServiceRunner::run_mutating`] (one writer + N readers over an
//! epoch-swapped [`CorpusHandle`]), [`ServiceRunner::run_corpus`]
//! (scatter–gather over a sharded multi-document [`Corpus`]) and
//! [`ServiceRunner::run_corpus_mutating`] (N readers + one writer thread
//! per mutated document).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cqt_core::{Answer, ExecScratch};
use cqt_trees::edit::EditError;
use cqt_trees::DocSummary;

use crate::batch::{BatchWorkload, PreparedBatch};
use crate::corpus::{CommitReport, CorpusHandle};
use crate::plan::{Plan, PlanCache, PlanKey, PlanOptions};
use crate::shard::{Corpus, CorpusError, DocId, Document, SharingSummary};
use crate::stats::{
    answer_fingerprint, BatchReport, BatchSharing, CorpusMutationReport, CorpusReport,
    LatencySummary, MutationReport, PruneStats, ServiceReport,
};
use crate::workload::{CorpusMutationWorkload, CorpusWorkload, MutationWorkload, Workload};

/// Configuration of a [`ServiceRunner`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub threads: usize,
    /// Plan-compilation options.
    pub plan: PlanOptions,
    /// Requests claimed per cursor increment. Small enough to balance load,
    /// large enough to keep cursor contention negligible.
    pub chunk: usize,
    /// Whether corpus scatter prunes documents through the
    /// [`crate::index::LabelIndex`] + per-snapshot summary double check.
    /// On by default; the differential tests run both settings and assert
    /// identical answer fingerprints.
    pub prune: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: std::thread::available_parallelism().map_or(1, usize::from),
            plan: PlanOptions::default(),
            chunk: 16,
            prune: true,
        }
    }
}

impl ServiceConfig {
    /// A config with `threads` workers and default options.
    pub fn with_threads(threads: usize) -> Self {
        ServiceConfig {
            threads,
            ..ServiceConfig::default()
        }
    }

    /// The same config with pruning switched on or off.
    pub fn with_prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }
}

/// The scatter phase's per-document pruning decision. `index_candidate`
/// says whether the posting-list intersection kept the document; `summary`
/// is the document's *current snapshot* summary, which makes the decision
/// exact whatever the index says:
///
/// * not an index candidate → confirm against the snapshot summary
///   ([`Plan::prunes`]) — a stale index (the document gained a required
///   label since the intersection) is rescued here, so pruning never drops
///   a non-empty answer;
/// * index candidate → the labels are (said to be) present, so only the
///   axis requirements — which the label index does not cover — are
///   checked. A stale-extra posting just means one wasted execution that
///   returns the correct empty answer (counted as a false positive).
///
/// Whenever this returns `true`, the answer on `summary`'s snapshot is
/// provably empty, so emitting [`Plan::empty_answer`] without executing is
/// fingerprint-exact.
pub(crate) fn should_prune(plan: &Plan, index_candidate: bool, summary: &DocSummary) -> bool {
    if plan.is_always_empty() {
        return true;
    }
    if !index_candidate {
        return plan.prunes(summary);
    }
    plan.required_axes()
        .iter()
        .any(|&axis| !summary.can_satisfy(axis))
}

/// The batch-serving runner: a plan cache plus a thread-pool configuration.
#[derive(Debug, Default)]
pub struct ServiceRunner {
    config: ServiceConfig,
    cache: Arc<PlanCache>,
}

impl ServiceRunner {
    /// A runner with a fresh plan cache.
    pub fn new(config: ServiceConfig) -> Self {
        ServiceRunner {
            config,
            cache: Arc::new(PlanCache::new()),
        }
    }

    /// A runner sharing an existing plan cache (e.g. across batches).
    pub fn with_cache(config: ServiceConfig, cache: Arc<PlanCache>) -> Self {
        ServiceRunner { config, cache }
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The runner configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Executes every request of `workload` and reports throughput, latency
    /// percentiles and cache counters.
    pub fn run(&self, workload: &Workload) -> ServiceReport {
        let total = workload.request_count();
        let threads = self.config.threads.max(1);
        let chunk = self.config.chunk.max(1);
        let cursor = AtomicUsize::new(0);
        // Hash every workload query into its cache key once, up front; the
        // hot loop then never re-hashes (or re-serializes, for XPath) specs.
        let keys: Vec<PlanKey> = workload
            .queries
            .iter()
            .map(|spec| PlanKey::of_spec(spec).with_options(&self.config.plan))
            .collect();
        let started = Instant::now();
        let mut all_latencies: Vec<u64> = Vec::with_capacity(total);
        let mut fingerprint = 0u64;
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let cache = &self.cache;
                let options = &self.config.plan;
                let keys = &keys;
                workers.push(scope.spawn(move || {
                    let mut scratch = ExecScratch::new();
                    let mut latencies = Vec::new();
                    let mut fingerprint = 0u64;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= total {
                            break;
                        }
                        for i in start..(start + chunk).min(total) {
                            let (query_index, tree_index) = workload.request(i);
                            let spec = &workload.queries[query_index];
                            let tree = &workload.trees[tree_index];
                            let begin = Instant::now();
                            let plan = cache.get_or_compile_keyed(keys[query_index], spec, options);
                            let answer = plan.execute(tree, &mut scratch);
                            latencies.push(begin.elapsed().as_nanos() as u64);
                            fingerprint =
                                fingerprint.wrapping_add(answer_fingerprint(i as u64, &answer));
                        }
                    }
                    (latencies, fingerprint)
                }));
            }
            for worker in workers {
                let (latencies, worker_fingerprint) =
                    worker.join().expect("serving worker panicked");
                all_latencies.extend(latencies);
                fingerprint = fingerprint.wrapping_add(worker_fingerprint);
            }
        });
        let wall_ns = started.elapsed().as_nanos() as u64;
        let requests = all_latencies.len() as u64;
        debug_assert_eq!(requests as usize, total);
        ServiceReport {
            threads,
            requests,
            wall_ns,
            qps: requests as f64 / (wall_ns as f64 / 1e9).max(1e-12),
            latency: LatencySummary::from_samples(all_latencies),
            answer_fingerprint: fingerprint,
            plan_cache: self.cache.stats(),
        }
    }

    /// Executes a mixed read/write workload against an epoch-swapped corpus:
    /// `config.threads` reader threads drain the read stream while one extra
    /// writer thread commits the workload's scripts at the configured cursor
    /// points.
    ///
    /// Every read snapshots the corpus, binds its plan-cache key to the
    /// snapshot's structure hash ([`PlanKey::with_document`]) and executes
    /// against the snapshot's prepared tree — so a reader either serves the
    /// epoch it snapshot, entirely, or a later snapshot, entirely; there is
    /// no state through which pre- and post-commit data could blend. The
    /// returned [`MutationReport`] records each distinct
    /// `(query, epoch, answer fingerprint)` observation for checking against
    /// a [`crate::corpus::MutationOracle`]. One probe read per query runs
    /// before the writer starts and after it finishes, so epoch 0 and the
    /// final epoch are always observed regardless of thread scheduling.
    ///
    /// Fails if a script does not apply to the epoch it is committed
    /// against (the corpus is left at the last successfully committed
    /// epoch).
    pub fn run_mutating(
        &self,
        corpus: &CorpusHandle,
        workload: &MutationWorkload,
    ) -> Result<MutationReport, EditError> {
        let total = if workload.queries.is_empty() {
            0
        } else {
            workload.reads
        };
        let threads = self.config.threads.max(1);
        let chunk = self.config.chunk.max(1);
        let cursor = AtomicUsize::new(0);
        let keys: Vec<PlanKey> = workload
            .queries
            .iter()
            .map(|spec| PlanKey::of_spec(spec).with_options(&self.config.plan))
            .collect();
        let commit_points: Vec<usize> = workload
            .commit_points()
            .into_iter()
            .map(|point| point.min(total))
            .collect();
        // One read of query `qi` through the full serving path, recording
        // the (query, epoch, fingerprint) observation.
        let serve_one = |query_index: usize,
                         scratch: &mut ExecScratch,
                         observations: &mut BTreeSet<(usize, u64, u64)>|
         -> u64 {
            let begin = Instant::now();
            let snapshot = corpus.snapshot();
            let spec = &workload.queries[query_index];
            let key = keys[query_index].with_document(snapshot.prepared.structure_hash());
            let plan = self
                .cache
                .get_or_compile_keyed(key, spec, &self.config.plan);
            let answer = plan.execute(&snapshot.prepared, scratch);
            observations.insert((
                query_index,
                snapshot.epoch,
                answer_fingerprint(query_index as u64, &answer),
            ));
            begin.elapsed().as_nanos() as u64
        };

        let started = Instant::now();
        let mut all_latencies: Vec<u64> = Vec::with_capacity(total + 2 * workload.queries.len());
        let mut observations: BTreeSet<(usize, u64, u64)> = BTreeSet::new();
        // Probe every query on epoch 0 before any writer runs.
        {
            let mut scratch = ExecScratch::new();
            for query_index in 0..workload.queries.len() {
                all_latencies.push(serve_one(query_index, &mut scratch, &mut observations));
            }
        }
        let mut commits: Vec<CommitReport> = Vec::with_capacity(workload.scripts.len());
        let mut commit_error: Option<EditError> = None;
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut reports: Vec<CommitReport> = Vec::with_capacity(workload.scripts.len());
                for (i, script) in workload.scripts.iter().enumerate() {
                    while cursor.load(Ordering::Relaxed) < commit_points[i] {
                        // Sleep, don't spin: reads take microseconds, so a
                        // 100µs poll paces commits finely enough without the
                        // writer stealing a core from the readers it is
                        // being benchmarked against.
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    }
                    match corpus.commit(script) {
                        Ok(report) => {
                            reports.push(report);
                            // Superseded epochs are unreachable for new
                            // snapshots: drop their plan entries so the
                            // cache is bounded by live epochs, not total
                            // commits. Every superseded hash is re-swept on
                            // each commit because an in-flight reader that
                            // snapshot an epoch just before its eviction
                            // can re-insert its entry afterwards (a correct,
                            // merely unmemoized read); the re-sweep keeps
                            // such stragglers from accumulating.
                            sweep_superseded(&self.cache, &reports);
                        }
                        Err(error) => return (reports, Some(error)),
                    }
                }
                (reports, None)
            });
            let mut workers = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let serve_one = &serve_one;
                workers.push(scope.spawn(move || {
                    let mut scratch = ExecScratch::new();
                    let mut latencies = Vec::new();
                    let mut observations = BTreeSet::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= total {
                            break;
                        }
                        for i in start..(start + chunk).min(total) {
                            latencies.push(serve_one(
                                workload.query_of(i),
                                &mut scratch,
                                &mut observations,
                            ));
                        }
                    }
                    (latencies, observations)
                }));
            }
            for worker in workers {
                let (latencies, observed) = worker.join().expect("reader worker panicked");
                all_latencies.extend(latencies);
                observations.extend(observed);
            }
            let (reports, error) = writer.join().expect("writer thread panicked");
            commits = reports;
            commit_error = error;
        });
        if let Some(error) = commit_error {
            return Err(error);
        }
        // All readers have joined, so no stale re-insert can happen after
        // this final sweep: the cache now holds exactly the live epoch's
        // entries (plus any unbound ones).
        sweep_superseded(&self.cache, &commits);
        // Probe the final epoch: the writer has finished, so this is
        // deterministically the last committed epoch.
        {
            let mut scratch = ExecScratch::new();
            for query_index in 0..workload.queries.len() {
                all_latencies.push(serve_one(query_index, &mut scratch, &mut observations));
            }
        }
        let wall_ns = started.elapsed().as_nanos() as u64;
        let reads = all_latencies.len() as u64;
        Ok(MutationReport {
            threads,
            reads,
            wall_ns,
            qps: reads as f64 / (wall_ns as f64 / 1e9).max(1e-12),
            latency: LatencySummary::from_samples(all_latencies),
            commits,
            observations,
            plan_cache: self.cache.stats(),
        })
    }

    /// Executes every scatter–gather request of `workload` against a
    /// sharded multi-document corpus.
    ///
    /// Each request resolves its [`crate::shard::FanOut`] target to a
    /// document list (resolved once, up front), then — per document —
    /// snapshots the document's current epoch, binds the plan-cache key to
    /// the snapshot's structure hash and tags the lookup with the
    /// document's identity (so [`crate::plan::PlanCacheStats`] counts
    /// cross-document sharing), executes, and folds the answer into an
    /// order-independent per-request fingerprint. A request's latency
    /// covers its whole scatter–gather.
    pub fn run_corpus(&self, corpus: &Corpus, workload: &CorpusWorkload) -> CorpusReport {
        // 0 whenever `requests` is empty, so `request_of`'s modulo is safe.
        let total = workload.request_count();
        let threads = self.config.threads.max(1);
        let chunk = self.config.chunk.max(1);
        let cursor = AtomicUsize::new(0);
        let keys: Vec<PlanKey> = workload
            .requests
            .iter()
            .map(|r| PlanKey::of_spec(&r.query).with_options(&self.config.plan))
            .collect();
        // Resolve fan-out targets once: corpus membership is stable during a
        // run (only commits happen concurrently), so this avoids re-walking
        // shard maps per request. Snapshots are still taken per execution —
        // a concurrent commit is picked up by the next request that touches
        // the document.
        let targets: Vec<Arc<Vec<Arc<Document>>>> = workload
            .requests
            .iter()
            .map(|r| corpus.select(&r.target))
            .collect();
        // Prune state per request: the document-independent compiled plan
        // (source of required labels/axes and the empty answer) and the
        // posting-list intersection over the corpus label index — computed
        // once here, before the fan-out, so the hot loop only tests set
        // membership. `None` inner set = the plan requires no labels, so
        // the index cannot prune (axis checks still can).
        #[allow(clippy::type_complexity)]
        let pruners: Vec<Option<(Plan, Answer, Option<BTreeSet<DocId>>)>> = workload
            .requests
            .iter()
            .map(|r| {
                if !self.config.prune {
                    return None;
                }
                let (plan, _analyses) = Plan::compile(&r.query, &self.config.plan);
                let empty = plan.empty_answer();
                let survivors = corpus.label_index().candidates(plan.required_labels());
                Some((plan, empty, survivors))
            })
            .collect();
        let documents = corpus.len();
        let started = Instant::now();
        let mut all_latencies: Vec<u64> = Vec::with_capacity(total);
        let mut fingerprint = 0u64;
        let mut doc_executions = 0u64;
        let mut prune = PruneStats::default();
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let cache = &self.cache;
                let options = &self.config.plan;
                let keys = &keys;
                let targets = &targets;
                let pruners = &pruners;
                workers.push(scope.spawn(move || {
                    let mut scratch = ExecScratch::new();
                    let mut latencies = Vec::new();
                    let mut fingerprint = 0u64;
                    let mut executions = 0u64;
                    let mut prune = PruneStats::default();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= total {
                            break;
                        }
                        for i in start..(start + chunk).min(total) {
                            let request_index = workload.request_of(i);
                            let spec = &workload.requests[request_index].query;
                            let begin = Instant::now();
                            for (j, document) in targets[request_index].iter().enumerate() {
                                // Key each gathered answer by (request, doc
                                // position): swapping answers between
                                // documents or requests changes the sum,
                                // while thread scheduling does not. Pruned
                                // documents fold their empty answer under
                                // the *same* key, so a pruned run's total
                                // equals the unpruned run's bit for bit.
                                let fp_key = i as u64 * 1_000_003 + j as u64;
                                let snapshot = document.handle().snapshot();
                                if let Some((prune_plan, empty, survivors)) =
                                    &pruners[request_index]
                                {
                                    prune.candidates += 1;
                                    let index_candidate = match survivors {
                                        Some(s) => s.contains(document.id()),
                                        None => true,
                                    };
                                    if should_prune(
                                        prune_plan,
                                        index_candidate,
                                        snapshot.prepared.doc_summary(),
                                    ) {
                                        fingerprint = fingerprint
                                            .wrapping_add(answer_fingerprint(fp_key, empty));
                                        prune.pruned += 1;
                                        continue;
                                    }
                                    prune.survivors += 1;
                                }
                                let key = keys[request_index]
                                    .with_document(snapshot.prepared.structure_hash());
                                let plan = cache.get_or_compile_tagged(
                                    key,
                                    spec,
                                    options,
                                    document.doc_tag(),
                                );
                                let answer = plan.execute(&snapshot.prepared, &mut scratch);
                                if let Some((_, empty, _)) = &pruners[request_index] {
                                    if answer == *empty {
                                        prune.false_positives += 1;
                                    }
                                }
                                fingerprint =
                                    fingerprint.wrapping_add(answer_fingerprint(fp_key, &answer));
                                executions += 1;
                            }
                            latencies.push(begin.elapsed().as_nanos() as u64);
                        }
                    }
                    (latencies, fingerprint, executions, prune)
                }));
            }
            for worker in workers {
                let (latencies, worker_fingerprint, executions, worker_prune) =
                    worker.join().expect("corpus worker panicked");
                all_latencies.extend(latencies);
                fingerprint = fingerprint.wrapping_add(worker_fingerprint);
                doc_executions += executions;
                prune.absorb(&worker_prune);
            }
        });
        let wall_ns = started.elapsed().as_nanos() as u64;
        let requests = all_latencies.len() as u64;
        let plan_cache = self.cache.stats();
        CorpusReport {
            threads,
            shards: corpus.shard_count(),
            documents,
            requests,
            doc_executions,
            wall_ns,
            qps: requests as f64 / (wall_ns as f64 / 1e9).max(1e-12),
            latency: LatencySummary::from_samples(all_latencies),
            answer_fingerprint: fingerprint,
            sharing: SharingSummary::from_stats(&plan_cache),
            plan_cache,
            prune,
        }
    }

    /// Executes every batch of `workload` against a sharded corpus: each
    /// batch instance resolves its fan-out once, snapshots each document
    /// once, and serves all of its queries from that snapshot through a
    /// [`crate::batch::PreparedBatch`] (whole-query dedup, cross-query
    /// shared-step table, union-label pruning with per-query re-checks).
    ///
    /// Per-query answers are folded under exactly the fingerprint keys
    /// [`ServiceRunner::run_corpus`] uses on
    /// [`BatchWorkload::flatten`] — query `q` of batch `b` on repeat `r`
    /// is flat request `r * flat_len + flat_base[b] + q`, and each of its
    /// per-document answers is keyed `flat_i * 1_000_003 + doc_position`.
    /// The two runs are fingerprint-identical, with pruning on or off.
    pub fn run_batched(&self, corpus: &Corpus, workload: &BatchWorkload) -> BatchReport {
        let total = workload.batch_count();
        let batches_len = workload.batches.len().max(1);
        let flat_len = workload.flat_len();
        let flat_base = workload.flat_base();
        let threads = self.config.threads.max(1);
        let chunk = self.config.chunk.max(1);
        let cursor = AtomicUsize::new(0);
        // Per distinct batch (not per instance): the fan-out resolution and
        // the whole sharing analysis — dedup, plan compilation, shared-step
        // interning, union posting-list intersection — happen once here.
        let targets: Vec<Arc<Vec<Arc<Document>>>> = workload
            .batches
            .iter()
            .map(|b| corpus.select(&b.target))
            .collect();
        let prune_index = self.config.prune.then(|| corpus.label_index());
        let prepared: Vec<PreparedBatch> = workload
            .batches
            .iter()
            .map(|b| {
                PreparedBatch::prepare(&b.queries, &self.cache, &self.config.plan, prune_index)
            })
            .collect();
        let mut sharing = BatchSharing::default();
        for batch in &prepared {
            sharing.deduped_queries += batch.deduped_queries() as u64;
            sharing.shared_steps += batch.shared_steps() as u64;
            sharing.reused_steps += batch.reused_steps() as u64;
        }
        let documents = corpus.len();
        let started = Instant::now();
        let mut all_latencies: Vec<u64> = Vec::with_capacity(total);
        let mut fingerprint = 0u64;
        let mut doc_answers = 0u64;
        let mut doc_executions = 0u64;
        let mut prune = PruneStats::default();
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let targets = &targets;
                let prepared = &prepared;
                let flat_base = &flat_base;
                workers.push(scope.spawn(move || {
                    let mut scratch = cqt_core::BatchScratch::new();
                    let mut answers: Vec<Answer> = Vec::new();
                    let mut latencies = Vec::new();
                    let mut fingerprint = 0u64;
                    let mut doc_answers = 0u64;
                    let mut executions = 0u64;
                    let mut prune = PruneStats::default();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= total {
                            break;
                        }
                        for i in start..(start + chunk).min(total) {
                            let b = workload.batch_of(i);
                            let rep = i / batches_len;
                            let batch = &prepared[b];
                            let begin = Instant::now();
                            for (j, document) in targets[b].iter().enumerate() {
                                answers.clear();
                                executions += batch.execute_document(
                                    document,
                                    &mut scratch,
                                    &mut answers,
                                    &mut prune,
                                );
                                for (q, answer) in answers.iter().enumerate() {
                                    let flat_i = (rep * flat_len + flat_base[b] + q) as u64;
                                    let fp_key = flat_i * 1_000_003 + j as u64;
                                    fingerprint = fingerprint
                                        .wrapping_add(answer_fingerprint(fp_key, answer));
                                }
                                doc_answers += answers.len() as u64;
                            }
                            latencies.push(begin.elapsed().as_nanos() as u64);
                        }
                    }
                    let runtime = (
                        scratch.step_evals(),
                        scratch.step_hits(),
                        scratch.empty_short_circuits(),
                    );
                    (
                        latencies,
                        fingerprint,
                        doc_answers,
                        executions,
                        prune,
                        runtime,
                    )
                }));
            }
            for worker in workers {
                let (latencies, worker_fingerprint, answers, executions, worker_prune, runtime) =
                    worker.join().expect("batch worker panicked");
                all_latencies.extend(latencies);
                fingerprint = fingerprint.wrapping_add(worker_fingerprint);
                doc_answers += answers;
                doc_executions += executions;
                prune.absorb(&worker_prune);
                sharing.step_evals += runtime.0;
                sharing.step_hits += runtime.1;
                sharing.empty_short_circuits += runtime.2;
            }
        });
        let wall_ns = started.elapsed().as_nanos() as u64;
        let batches = all_latencies.len() as u64;
        debug_assert_eq!(batches as usize, total);
        let queries = workload.query_count() as u64;
        BatchReport {
            threads,
            shards: corpus.shard_count(),
            documents,
            batches,
            queries,
            doc_answers,
            doc_executions,
            wall_ns,
            qps: queries as f64 / (wall_ns as f64 / 1e9).max(1e-12),
            latency: LatencySummary::from_samples(all_latencies),
            answer_fingerprint: fingerprint,
            plan_cache: self.cache.stats(),
            sharing,
            prune,
        }
    }

    /// Executes a mixed read/write workload against a sharded corpus:
    /// `config.threads` reader threads cycle the (query × document) read
    /// stream while **one writer thread per workload writer** commits its
    /// document's scripts at cursor-paced points — writers to distinct
    /// documents run concurrently and never block each other's readers.
    ///
    /// Every read snapshots exactly one document and binds its plan key to
    /// that snapshot's structure hash, so per-document epoch consistency
    /// holds for the same reason as in [`ServiceRunner::run_mutating`]; the
    /// recorded `(document, query, epoch, fingerprint)` observations are
    /// checkable with a [`crate::shard::CorpusMutationOracle`], whose check
    /// also enforces **writer isolation** (documents without a writer are
    /// only ever observed at epoch 0). One probe read per (query, document)
    /// pair runs before the writers start and after they all finish.
    ///
    /// Fails fast (before any thread starts) if a read target or writer
    /// document is not in the corpus; fails after the run if any script did
    /// not apply (its document is left at its last good epoch; other
    /// writers are unaffected).
    pub fn run_corpus_mutating(
        &self,
        corpus: &Corpus,
        workload: &CorpusMutationWorkload,
    ) -> Result<CorpusMutationReport, CorpusError> {
        let resolve = |id: &DocId| -> Result<Arc<Document>, CorpusError> {
            corpus
                .get(id)
                .ok_or_else(|| CorpusError::UnknownDocument(id.clone()))
        };
        let readers_docs: Vec<Arc<Document>> = workload
            .doc_ids
            .iter()
            .map(&resolve)
            .collect::<Result<_, _>>()?;
        let writer_docs: Vec<(Arc<Document>, &[cqt_trees::edit::EditScript])> = workload
            .writers
            .iter()
            .map(|(id, scripts)| Ok((resolve(id)?, scripts.as_slice())))
            .collect::<Result<_, CorpusError>>()?;
        let total = if workload.queries.is_empty() || readers_docs.is_empty() {
            0
        } else {
            workload.reads
        };
        let threads = self.config.threads.max(1);
        let chunk = self.config.chunk.max(1);
        let cursor = AtomicUsize::new(0);
        let keys: Vec<PlanKey> = workload
            .queries
            .iter()
            .map(|spec| PlanKey::of_spec(spec).with_options(&self.config.plan))
            .collect();
        // Document-independent prune plans, one per query: the index is
        // consulted *live* per read (postings move under concurrent
        // commits), and the decision is re-validated against the snapshot
        // summary, so a pruned read observes exactly the empty answer its
        // snapshot epoch would have produced — the oracle check below holds
        // with pruning on or off.
        let pruners: Vec<Option<(Plan, Answer)>> = workload
            .queries
            .iter()
            .map(|spec| {
                if !self.config.prune {
                    return None;
                }
                let (plan, _analyses) = Plan::compile(spec, &self.config.plan);
                let empty = plan.empty_answer();
                Some((plan, empty))
            })
            .collect();
        // One read of query `qi` against document `di` through the full
        // serving path, recording the (doc, query, epoch, fingerprint)
        // observation. Fingerprints are keyed by query index, exactly like
        // the per-document oracle's expectations.
        type Observations = BTreeSet<(DocId, usize, u64, u64)>;
        let serve_one = |query_index: usize,
                         doc_index: usize,
                         scratch: &mut ExecScratch,
                         observations: &mut Observations,
                         prune: &mut PruneStats|
         -> u64 {
            let begin = Instant::now();
            let document = &readers_docs[doc_index];
            let snapshot = document.handle().snapshot();
            if let Some((prune_plan, empty)) = &pruners[query_index] {
                prune.candidates += 1;
                let labels = prune_plan.required_labels();
                let index_candidate = labels.is_empty()
                    || labels
                        .iter()
                        .all(|label| corpus.label_index().contains(label, document.id()));
                if should_prune(prune_plan, index_candidate, snapshot.prepared.doc_summary()) {
                    observations.insert((
                        document.id().clone(),
                        query_index,
                        snapshot.epoch,
                        answer_fingerprint(query_index as u64, empty),
                    ));
                    prune.pruned += 1;
                    return begin.elapsed().as_nanos() as u64;
                }
                prune.survivors += 1;
            }
            let spec = &workload.queries[query_index];
            let key = keys[query_index].with_document(snapshot.prepared.structure_hash());
            let plan =
                self.cache
                    .get_or_compile_tagged(key, spec, &self.config.plan, document.doc_tag());
            let answer = plan.execute(&snapshot.prepared, scratch);
            if let Some((_, empty)) = &pruners[query_index] {
                if answer == *empty {
                    prune.false_positives += 1;
                }
            }
            observations.insert((
                document.id().clone(),
                query_index,
                snapshot.epoch,
                answer_fingerprint(query_index as u64, &answer),
            ));
            begin.elapsed().as_nanos() as u64
        };

        let started = Instant::now();
        let probe_count = workload.queries.len() * readers_docs.len();
        let mut all_latencies: Vec<u64> = Vec::with_capacity(total + 2 * probe_count);
        let mut observations: Observations = BTreeSet::new();
        let mut prune = PruneStats::default();
        // Probe every (query, document) pair on its epoch 0 before any
        // writer runs.
        if total > 0 {
            let mut scratch = ExecScratch::new();
            for doc_index in 0..readers_docs.len() {
                for query_index in 0..workload.queries.len() {
                    all_latencies.push(serve_one(
                        query_index,
                        doc_index,
                        &mut scratch,
                        &mut observations,
                        &mut prune,
                    ));
                }
            }
        }
        let mut commits: BTreeMap<DocId, Vec<CommitReport>> = BTreeMap::new();
        let mut commit_error: Option<CorpusError> = None;
        std::thread::scope(|scope| {
            let mut writer_handles = Vec::with_capacity(writer_docs.len());
            for (w, (document, scripts)) in writer_docs.iter().enumerate() {
                let cursor = &cursor;
                let commit_points = workload.commit_points(w);
                let cache = &self.cache;
                writer_handles.push(scope.spawn(move || {
                    let mut reports: Vec<CommitReport> = Vec::with_capacity(scripts.len());
                    for (i, script) in scripts.iter().enumerate() {
                        while cursor.load(Ordering::Relaxed) < commit_points[i].min(total) {
                            // Sleep, don't spin (see `run_mutating`): a
                            // 100µs poll paces commits finely enough
                            // without stealing reader cores.
                            std::thread::sleep(std::time::Duration::from_micros(100));
                        }
                        match document.handle().commit(script) {
                            Ok(report) => {
                                reports.push(report);
                                // Sweeping a superseded hash may also evict
                                // entries a structurally identical *clone*
                                // document still serves — a correct, merely
                                // unmemoized read for the clone (its next
                                // lookup recompiles), accepted to keep the
                                // cache bounded by live epochs.
                                sweep_superseded(cache, &reports);
                            }
                            Err(error) => {
                                return (
                                    document.id().clone(),
                                    reports,
                                    Some(CorpusError::Edit(document.id().clone(), error)),
                                )
                            }
                        }
                    }
                    (document.id().clone(), reports, None)
                }));
            }
            let mut workers = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let serve_one = &serve_one;
                workers.push(scope.spawn(move || {
                    let mut scratch = ExecScratch::new();
                    let mut latencies = Vec::new();
                    let mut observations = BTreeSet::new();
                    let mut prune = PruneStats::default();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= total {
                            break;
                        }
                        for i in start..(start + chunk).min(total) {
                            let (query_index, doc_index) = workload.read_of(i);
                            latencies.push(serve_one(
                                query_index,
                                doc_index,
                                &mut scratch,
                                &mut observations,
                                &mut prune,
                            ));
                        }
                    }
                    (latencies, observations, prune)
                }));
            }
            for worker in workers {
                let (latencies, observed, worker_prune) =
                    worker.join().expect("corpus reader panicked");
                all_latencies.extend(latencies);
                observations.extend(observed);
                prune.absorb(&worker_prune);
            }
            for handle in writer_handles {
                let (id, reports, error) = handle.join().expect("corpus writer panicked");
                // Final sweep per document: readers have joined, so no
                // stale re-insert can outlive this.
                sweep_superseded(&self.cache, &reports);
                if !reports.is_empty() {
                    commits.insert(id, reports);
                }
                if commit_error.is_none() {
                    commit_error = error;
                }
            }
        });
        if let Some(error) = commit_error {
            return Err(error);
        }
        // Probe the final epoch of every (query, document) pair: all
        // writers have finished, so these are deterministically the last
        // committed epochs.
        if total > 0 {
            let mut scratch = ExecScratch::new();
            for doc_index in 0..readers_docs.len() {
                for query_index in 0..workload.queries.len() {
                    all_latencies.push(serve_one(
                        query_index,
                        doc_index,
                        &mut scratch,
                        &mut observations,
                        &mut prune,
                    ));
                }
            }
        }
        let wall_ns = started.elapsed().as_nanos() as u64;
        let reads = all_latencies.len() as u64;
        let plan_cache = self.cache.stats();
        Ok(CorpusMutationReport {
            threads,
            writers: writer_docs.len(),
            reads,
            wall_ns,
            qps: reads as f64 / (wall_ns as f64 / 1e9).max(1e-12),
            latency: LatencySummary::from_samples(all_latencies),
            commits,
            observations,
            sharing: SharingSummary::from_stats(&plan_cache),
            plan_cache,
            prune,
        })
    }
}

/// Evicts the plan entries of every epoch `commits` superseded (skipping
/// no-op commits whose hash did not change — their "previous" hash is the
/// live one).
fn sweep_superseded(cache: &PlanCache, commits: &[CommitReport]) {
    let live = commits.last().map(|c| c.structure_hash);
    for commit in commits {
        if Some(commit.previous_structure_hash) != live {
            cache.evict_document(commit.previous_structure_hash);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::QuerySpec;
    use cqt_core::{Answer, Engine};
    use cqt_query::cq::figure1_query;
    use cqt_trees::parse::parse_term;
    use cqt_trees::PreparedTree;

    fn smoke_workload(repeats: usize) -> Workload {
        let trees = vec![
            Arc::new(PreparedTree::new(
                parse_term(
                    "CORPUS(S(NP(DT, NN), VP(VB, NP(NN), PP(IN, NP(NN)))), S(NP(NN), VP(VB)))",
                )
                .unwrap(),
            )),
            Arc::new(PreparedTree::new(
                parse_term("A(B(D), C(D, B(E)))").unwrap(),
            )),
        ];
        let queries = vec![
            QuerySpec::parse_cq("Q(y) :- A(x), Child+(x, y), B(y).").unwrap(),
            QuerySpec::parse_cq("Q() :- NP(x), Following(x, y), PP(y).").unwrap(),
            QuerySpec::from_cq(figure1_query()),
            QuerySpec::parse_xpath("//NP | //B").unwrap(),
        ];
        Workload::new(queries, trees, repeats)
    }

    #[test]
    fn multi_thread_run_matches_single_thread_fingerprint() {
        let workload = smoke_workload(3);
        let single = ServiceRunner::new(ServiceConfig::with_threads(1)).run(&workload);
        let multi = ServiceRunner::new(ServiceConfig {
            threads: 4,
            chunk: 2,
            ..ServiceConfig::default()
        })
        .run(&workload);
        assert_eq!(single.requests, workload.request_count() as u64);
        assert_eq!(multi.requests, single.requests);
        assert_eq!(multi.answer_fingerprint, single.answer_fingerprint);
        assert!(multi.qps > 0.0);
        assert!(multi.latency.p50_ns <= multi.latency.p99_ns);
        assert!(multi.latency.p99_ns <= multi.latency.max_ns);
    }

    #[test]
    fn answers_match_the_one_shot_engine() {
        let workload = smoke_workload(1);
        let runner = ServiceRunner::new(ServiceConfig::with_threads(3));
        let report = runner.run(&workload);
        // Re-derive the fingerprint with the unbatched Engine facade.
        let engine = Engine::new();
        let mut expected = 0u64;
        for i in 0..workload.request_count() {
            let (qi, ti) = workload.request(i);
            let tree = workload.trees[ti].tree();
            let answer = match &workload.queries[qi] {
                QuerySpec::Cq(query) => engine.eval(tree, query),
                QuerySpec::XPath(query) => {
                    let compiled = cqt_xpath::CompiledXPath::compile(query.clone());
                    let mut scratch = ExecScratch::new();
                    Answer::Nodes(compiled.eval_on(tree, &mut scratch).iter().collect())
                }
            };
            expected = expected.wrapping_add(answer_fingerprint(i as u64, &answer));
        }
        assert_eq!(report.answer_fingerprint, expected);
    }

    #[test]
    fn plan_cache_is_shared_across_workers_and_runs() {
        let workload = smoke_workload(4);
        let runner = ServiceRunner::new(ServiceConfig::with_threads(4));
        let first = runner.run(&workload);
        assert_eq!(first.plan_cache.misses, workload.queries.len() as u64);
        let analyses_after_first = first.plan_cache.analyses;
        let second = runner.run(&workload);
        // The second batch compiles nothing new.
        assert_eq!(second.plan_cache.misses, first.plan_cache.misses);
        assert_eq!(second.plan_cache.analyses, analyses_after_first);
        assert_eq!(
            second.plan_cache.hits,
            2 * workload.request_count() as u64 - first.plan_cache.misses
        );
    }

    #[test]
    fn empty_workload_reports_zero_requests() {
        let workload = Workload::new(Vec::new(), Vec::new(), 5);
        let report = ServiceRunner::new(ServiceConfig::with_threads(2)).run(&workload);
        assert_eq!(report.requests, 0);
        assert_eq!(report.latency, LatencySummary::default());
    }

    #[test]
    fn mutating_run_is_epoch_consistent_and_probes_both_ends() {
        use crate::corpus::{CorpusHandle, MutationOracle};
        use cqt_trees::edit::{EditScript, TreeEdit};

        let initial = parse_term("R(A(B), C, A(B, B))").unwrap();
        let scripts = vec![
            EditScript::single(TreeEdit::InsertSubtree {
                parent_pre: 0,
                position: 0,
                subtree: Box::new(parse_term("A(B(C))").unwrap()),
            }),
            EditScript::single(TreeEdit::Relabel {
                node_pre: 2,
                labels: vec!["C".into()],
            }),
        ];
        let queries = vec![
            QuerySpec::parse_cq("Q(y) :- A(x), Child(x, y), B(y).").unwrap(),
            QuerySpec::parse_xpath("//A[B] | //C").unwrap(),
        ];
        let workload = MutationWorkload::new(queries.clone(), scripts.clone(), 400);
        let corpus = CorpusHandle::new(initial.clone());
        let runner = ServiceRunner::new(ServiceConfig {
            threads: 4,
            chunk: 4,
            ..ServiceConfig::default()
        });
        let report = runner.run_mutating(&corpus, &workload).unwrap();
        assert_eq!(report.commits.len(), 2);
        assert_eq!(report.final_epoch(), 2);
        assert_eq!(report.reads, 400 + 2 * 2);
        // The probes guarantee both the initial and the final epoch were
        // served, whatever the thread interleaving did in between.
        let epochs = report.epochs_observed();
        assert!(epochs.contains(&0) && epochs.contains(&2), "{epochs:?}");
        // Every observation matches the oracle of its exact epoch.
        let oracle =
            MutationOracle::build(&initial, &scripts, &queries, &runner.config().plan).unwrap();
        oracle.check(&report).unwrap();
        // The relabel-only second commit carried its caches forward.
        assert!(report.commits[1].summary.keeps_structure());
    }

    #[test]
    fn mutating_run_surfaces_commit_errors() {
        use crate::corpus::CorpusHandle;
        use cqt_trees::edit::{EditError, EditScript, TreeEdit};

        let corpus = CorpusHandle::new(parse_term("R(A)").unwrap());
        let workload = MutationWorkload::new(
            vec![QuerySpec::parse_cq("Q() :- A(x).").unwrap()],
            vec![EditScript::single(TreeEdit::DeleteSubtree { node_pre: 0 })],
            50,
        );
        let runner = ServiceRunner::new(ServiceConfig::with_threads(2));
        assert_eq!(
            runner.run_mutating(&corpus, &workload).unwrap_err(),
            EditError::DeleteRoot
        );
        assert_eq!(corpus.epoch(), 0);
    }
}
