//! The multi-threaded batch runner.
//!
//! [`ServiceRunner::run`] shards a [`Workload`]'s requests over a fixed pool
//! of `std::thread` workers. Workers claim chunks of the request sequence
//! from a shared atomic cursor, resolve each request's plan through the
//! shared [`PlanCache`] (keys are hashed once per workload query up front,
//! so the per-request cost is one brief read-lock on the plan map — the
//! write lock is only ever taken while a plan is missing), and execute
//! against the request's `Arc<PreparedTree>` with a worker-local
//! [`cqt_core::ExecScratch`], so evaluation itself allocates nothing in the
//! steady state beyond the answer.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cqt_core::{Answer, ExecScratch};

use crate::plan::{PlanCache, PlanKey, PlanOptions};
use crate::stats::{LatencySummary, ServiceReport};
use crate::workload::Workload;

/// Configuration of a [`ServiceRunner`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub threads: usize,
    /// Plan-compilation options.
    pub plan: PlanOptions,
    /// Requests claimed per cursor increment. Small enough to balance load,
    /// large enough to keep cursor contention negligible.
    pub chunk: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: std::thread::available_parallelism().map_or(1, usize::from),
            plan: PlanOptions::default(),
            chunk: 16,
        }
    }
}

impl ServiceConfig {
    /// A config with `threads` workers and default options.
    pub fn with_threads(threads: usize) -> Self {
        ServiceConfig {
            threads,
            ..ServiceConfig::default()
        }
    }
}

/// The batch-serving runner: a plan cache plus a thread-pool configuration.
#[derive(Debug, Default)]
pub struct ServiceRunner {
    config: ServiceConfig,
    cache: Arc<PlanCache>,
}

impl ServiceRunner {
    /// A runner with a fresh plan cache.
    pub fn new(config: ServiceConfig) -> Self {
        ServiceRunner {
            config,
            cache: Arc::new(PlanCache::new()),
        }
    }

    /// A runner sharing an existing plan cache (e.g. across batches).
    pub fn with_cache(config: ServiceConfig, cache: Arc<PlanCache>) -> Self {
        ServiceRunner { config, cache }
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The runner configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Executes every request of `workload` and reports throughput, latency
    /// percentiles and cache counters.
    pub fn run(&self, workload: &Workload) -> ServiceReport {
        let total = workload.request_count();
        let threads = self.config.threads.max(1);
        let chunk = self.config.chunk.max(1);
        let cursor = AtomicUsize::new(0);
        // Hash every workload query into its cache key once, up front; the
        // hot loop then never re-hashes (or re-serializes, for XPath) specs.
        let keys: Vec<PlanKey> = workload
            .queries
            .iter()
            .map(|spec| PlanKey::of_spec(spec).with_options(&self.config.plan))
            .collect();
        let started = Instant::now();
        let mut all_latencies: Vec<u64> = Vec::with_capacity(total);
        let mut fingerprint = 0u64;
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let cache = &self.cache;
                let options = &self.config.plan;
                let keys = &keys;
                workers.push(scope.spawn(move || {
                    let mut scratch = ExecScratch::new();
                    let mut latencies = Vec::new();
                    let mut fingerprint = 0u64;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= total {
                            break;
                        }
                        for i in start..(start + chunk).min(total) {
                            let (query_index, tree_index) = workload.request(i);
                            let spec = &workload.queries[query_index];
                            let tree = &workload.trees[tree_index];
                            let begin = Instant::now();
                            let plan = cache.get_or_compile_keyed(keys[query_index], spec, options);
                            let answer = plan.execute(tree, &mut scratch);
                            latencies.push(begin.elapsed().as_nanos() as u64);
                            fingerprint =
                                fingerprint.wrapping_add(answer_fingerprint(i as u64, &answer));
                        }
                    }
                    (latencies, fingerprint)
                }));
            }
            for worker in workers {
                let (latencies, worker_fingerprint) =
                    worker.join().expect("serving worker panicked");
                all_latencies.extend(latencies);
                fingerprint = fingerprint.wrapping_add(worker_fingerprint);
            }
        });
        let wall_ns = started.elapsed().as_nanos() as u64;
        let requests = all_latencies.len() as u64;
        debug_assert_eq!(requests as usize, total);
        ServiceReport {
            threads,
            requests,
            wall_ns,
            qps: requests as f64 / (wall_ns as f64 / 1e9).max(1e-12),
            latency: LatencySummary::from_samples(all_latencies),
            answer_fingerprint: fingerprint,
            plan_cache: self.cache.stats(),
        }
    }
}

/// An order-independent fingerprint of one request's answer, keyed by the
/// request index so that swapping two different answers between requests
/// changes the sum.
fn answer_fingerprint(request: u64, answer: &Answer) -> u64 {
    let mut h = request.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xcafe_f00d;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    match answer {
        Answer::Boolean(b) => mix(u64::from(*b)),
        Answer::Nodes(nodes) => {
            for node in nodes {
                mix(node.index() as u64 + 1);
            }
        }
        Answer::Tuples(tuples) => {
            for tuple in tuples {
                for node in tuple {
                    mix(node.index() as u64 + 1);
                }
                mix(u64::MAX);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::QuerySpec;
    use cqt_core::Engine;
    use cqt_query::cq::figure1_query;
    use cqt_trees::parse::parse_term;
    use cqt_trees::PreparedTree;

    fn smoke_workload(repeats: usize) -> Workload {
        let trees = vec![
            Arc::new(PreparedTree::new(
                parse_term(
                    "CORPUS(S(NP(DT, NN), VP(VB, NP(NN), PP(IN, NP(NN)))), S(NP(NN), VP(VB)))",
                )
                .unwrap(),
            )),
            Arc::new(PreparedTree::new(
                parse_term("A(B(D), C(D, B(E)))").unwrap(),
            )),
        ];
        let queries = vec![
            QuerySpec::parse_cq("Q(y) :- A(x), Child+(x, y), B(y).").unwrap(),
            QuerySpec::parse_cq("Q() :- NP(x), Following(x, y), PP(y).").unwrap(),
            QuerySpec::from_cq(figure1_query()),
            QuerySpec::parse_xpath("//NP | //B").unwrap(),
        ];
        Workload::new(queries, trees, repeats)
    }

    #[test]
    fn multi_thread_run_matches_single_thread_fingerprint() {
        let workload = smoke_workload(3);
        let single = ServiceRunner::new(ServiceConfig::with_threads(1)).run(&workload);
        let multi = ServiceRunner::new(ServiceConfig {
            threads: 4,
            chunk: 2,
            ..ServiceConfig::default()
        })
        .run(&workload);
        assert_eq!(single.requests, workload.request_count() as u64);
        assert_eq!(multi.requests, single.requests);
        assert_eq!(multi.answer_fingerprint, single.answer_fingerprint);
        assert!(multi.qps > 0.0);
        assert!(multi.latency.p50_ns <= multi.latency.p99_ns);
        assert!(multi.latency.p99_ns <= multi.latency.max_ns);
    }

    #[test]
    fn answers_match_the_one_shot_engine() {
        let workload = smoke_workload(1);
        let runner = ServiceRunner::new(ServiceConfig::with_threads(3));
        let report = runner.run(&workload);
        // Re-derive the fingerprint with the unbatched Engine facade.
        let engine = Engine::new();
        let mut expected = 0u64;
        for i in 0..workload.request_count() {
            let (qi, ti) = workload.request(i);
            let tree = workload.trees[ti].tree();
            let answer = match &workload.queries[qi] {
                QuerySpec::Cq(query) => engine.eval(tree, query),
                QuerySpec::XPath(query) => {
                    let compiled = cqt_xpath::CompiledXPath::compile(query.clone());
                    let mut scratch = ExecScratch::new();
                    Answer::Nodes(compiled.eval_on(tree, &mut scratch).iter().collect())
                }
            };
            expected = expected.wrapping_add(answer_fingerprint(i as u64, &answer));
        }
        assert_eq!(report.answer_fingerprint, expected);
    }

    #[test]
    fn plan_cache_is_shared_across_workers_and_runs() {
        let workload = smoke_workload(4);
        let runner = ServiceRunner::new(ServiceConfig::with_threads(4));
        let first = runner.run(&workload);
        assert_eq!(first.plan_cache.misses, workload.queries.len() as u64);
        let analyses_after_first = first.plan_cache.analyses;
        let second = runner.run(&workload);
        // The second batch compiles nothing new.
        assert_eq!(second.plan_cache.misses, first.plan_cache.misses);
        assert_eq!(second.plan_cache.analyses, analyses_after_first);
        assert_eq!(
            second.plan_cache.hits,
            2 * workload.request_count() as u64 - first.plan_cache.misses
        );
    }

    #[test]
    fn empty_workload_reports_zero_requests() {
        let workload = Workload::new(Vec::new(), Vec::new(), 5);
        let report = ServiceRunner::new(ServiceConfig::with_threads(2)).run(&workload);
        assert_eq!(report.requests, 0);
        assert_eq!(report.latency, LatencySummary::default());
    }
}
