//! Corpus-scale pruning: the label → posting-list inverted index.
//!
//! `FanOut::All` scatter is Θ(documents) per request regardless of
//! selectivity. The paper's signature analysis already derives, per query,
//! which labels and axes *must* be non-empty for any answer to exist
//! ([`crate::plan::Plan::required_labels`] /
//! [`crate::plan::Plan::required_axes`]); this module applies the same idea
//! one level up: a [`LabelIndex`] maps every label occurring in the corpus
//! to the posting list of documents carrying it, so the scatter phase
//! intersects a handful of posting lists instead of executing the query on
//! every document.
//!
//! ## Consistency contract
//!
//! The index is maintained by the [`Corpus`](crate::shard::Corpus) write
//! path (insert adds postings from the document's
//! [`DocSummary`](cqt_trees::DocSummary), remove drops them, commit syncs
//! exactly the labels in
//! [`EditSummary::touched_labels`](cqt_trees::EditSummary)) and is treated
//! as an **over-approximation with a per-snapshot double check**: a stale
//! posting (document no longer carries the label) merely costs one summary
//! probe, and a *missing* posting is caught by the read path re-validating
//! every pruning decision against the document's own epoch snapshot summary
//! before skipping it. The gathered answers are therefore exact — bitwise
//! fingerprint-identical to an unpruned fan-out — even while writers commit
//! concurrently; the index only decides how much work the fast path saves.

use std::collections::BTreeSet;
use std::hash::Hasher;
use std::sync::RwLock;

use rustc_hash::{FxHashMap, FxHasher};

use crate::shard::DocId;

/// A sharded inverted index from label name to the posting list of
/// documents carrying it. Sharded by label hash, so commits touching
/// disjoint labels update disjoint locks.
#[derive(Debug)]
pub struct LabelIndex {
    shards: Vec<RwLock<FxHashMap<String, BTreeSet<DocId>>>>,
}

impl LabelIndex {
    /// An empty index with `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        LabelIndex {
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
        }
    }

    /// The shard a label routes to — same avalanche-finalized Fx hash as
    /// [`Corpus::shard_of`](crate::shard::Corpus::shard_of), for the same
    /// reason (prefix-sharing label families must spread).
    fn shard_of(&self, label: &str) -> usize {
        let mut hasher = FxHasher::default();
        hasher.write(label.as_bytes());
        let mut h = hasher.finish();
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % self.shards.len() as u64) as usize
    }

    fn shard(&self, label: &str) -> &RwLock<FxHashMap<String, BTreeSet<DocId>>> {
        &self.shards[self.shard_of(label)]
    }

    /// Adds `id` to the posting list of `label`.
    pub fn add(&self, label: &str, id: &DocId) {
        let mut shard = self.shard(label).write().expect("index lock poisoned");
        shard
            .entry(label.to_owned())
            .or_default()
            .insert(id.clone());
    }

    /// Removes `id` from the posting list of `label`, dropping the list
    /// when it empties.
    pub fn remove(&self, label: &str, id: &DocId) {
        let mut shard = self.shard(label).write().expect("index lock poisoned");
        if let Some(posting) = shard.get_mut(label) {
            posting.remove(id);
            if posting.is_empty() {
                shard.remove(label);
            }
        }
    }

    /// Adds `id` to every posting list in `labels` — the insert path,
    /// seeded from the document's epoch summary.
    pub fn add_document<'a>(&self, id: &DocId, labels: impl IntoIterator<Item = &'a str>) {
        for label in labels {
            self.add(label, id);
        }
    }

    /// Removes `id` from every posting list in `labels` — the remove path.
    pub fn remove_document<'a>(&self, id: &DocId, labels: impl IntoIterator<Item = &'a str>) {
        for label in labels {
            self.remove(label, id);
        }
    }

    /// Whether `label`'s posting list contains `id`.
    pub fn contains(&self, label: &str, id: &DocId) -> bool {
        self.shard(label)
            .read()
            .expect("index lock poisoned")
            .get(label)
            .is_some_and(|posting| posting.contains(id))
    }

    /// The posting list of `label` (empty when the label is unindexed).
    pub fn posting(&self, label: &str) -> BTreeSet<DocId> {
        self.shard(label)
            .read()
            .expect("index lock poisoned")
            .get(label)
            .cloned()
            .unwrap_or_default()
    }

    /// Number of labels with a non-empty posting list.
    pub fn label_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("index lock poisoned").len())
            .sum()
    }

    /// The documents whose posting lists contain **every** label in
    /// `labels` — the candidate survivors of label pruning. `None` when
    /// `labels` is empty (no label constraint: every document survives);
    /// `Some(∅)` when some label is absent from the whole corpus.
    ///
    /// Intersects smallest-posting-first, so highly selective labels cut
    /// the working set immediately.
    pub fn candidates(&self, labels: &[String]) -> Option<BTreeSet<DocId>> {
        if labels.is_empty() {
            return None;
        }
        let mut postings: Vec<BTreeSet<DocId>> =
            labels.iter().map(|label| self.posting(label)).collect();
        postings.sort_by_key(BTreeSet::len);
        let mut survivors = postings.remove(0);
        for posting in postings {
            if survivors.is_empty() {
                break;
            }
            survivors.retain(|id| posting.contains(id));
        }
        Some(survivors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(name: &str) -> DocId {
        DocId::new(name)
    }

    #[test]
    fn postings_track_adds_and_removes() {
        let index = LabelIndex::new(4);
        index.add_document(&id("a"), ["A", "B"]);
        index.add_document(&id("b"), ["B", "C"]);
        assert!(index.contains("A", &id("a")));
        assert!(index.contains("B", &id("b")));
        assert!(!index.contains("C", &id("a")));
        assert_eq!(index.label_count(), 3);
        assert_eq!(index.posting("B").len(), 2);
        index.remove_document(&id("a"), ["A", "B"]);
        assert!(!index.contains("A", &id("a")));
        assert_eq!(index.label_count(), 2, "empty postings are dropped");
        // Removing from a label that was never indexed is a no-op.
        index.remove("Z", &id("a"));
    }

    #[test]
    fn candidates_intersect_posting_lists() {
        let index = LabelIndex::new(2);
        index.add_document(&id("a"), ["A", "B"]);
        index.add_document(&id("b"), ["A"]);
        index.add_document(&id("c"), ["A", "B", "C"]);
        // No label constraint: no pruning possible.
        assert_eq!(index.candidates(&[]), None);
        let a = index.candidates(&["A".into()]).unwrap();
        assert_eq!(a.len(), 3);
        let ab = index.candidates(&["A".into(), "B".into()]).unwrap();
        assert_eq!(ab.iter().map(DocId::as_str).collect::<Vec<_>>(), ["a", "c"]);
        // A corpus-absent label empties the intersection immediately.
        let none = index.candidates(&["A".into(), "Z".into()]).unwrap();
        assert!(none.is_empty());
    }
}
