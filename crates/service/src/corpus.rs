//! Epoch-swapped mutable documents: the serving layer's write path.
//!
//! A [`CorpusHandle`] owns one logical document as a sequence of immutable
//! *epochs*, each an `Arc<PreparedTree>`. Readers take a [`CorpusSnapshot`]
//! — an epoch number plus the `Arc` — and evaluate against it without any
//! further synchronization: the snapshot is immutable, so a reader mid-query
//! is never affected by a concurrent commit, and an epoch stays alive for as
//! long as any reader still holds it. A [`CorpusHandle::commit`] applies an
//! [`EditScript`] to the current epoch's tree, prepares the result with
//! [`PreparedTree::prepare_edited`] (carrying forward every cache the edit
//! provably could not invalidate), and swaps the handle's pointer — a brief
//! write-lock over an `Arc` assignment; readers hold the lock only for the
//! instant of cloning the `Arc`, never during evaluation.
//!
//! Plan invalidation falls out of the structure hash: every commit changes
//! [`PreparedTree::structure_hash`], and the serving loop binds plan-cache
//! keys to it ([`crate::plan::PlanKey::with_document`]), so a lookup for the
//! new epoch can never return an entry created for the old one.
//!
//! ```
//! use cqt_service::CorpusHandle;
//! use cqt_trees::edit::{EditScript, TreeEdit};
//! use cqt_trees::parse::parse_term;
//!
//! let handle = CorpusHandle::new(parse_term("R(A(B), C)").unwrap());
//! let reader = handle.snapshot(); // epoch 0; evaluation is lock-free
//! let report = handle
//!     .commit(&EditScript::single(TreeEdit::Relabel {
//!         node_pre: 3, // pre-order rank of the C node
//!         labels: vec!["D".into()],
//!     }))
//!     .unwrap();
//! assert_eq!(report.epoch, 1);
//! assert!(report.summary.keeps_structure()); // relabel-only: caches carried
//! assert_eq!(handle.snapshot().epoch, 1);    // new readers see epoch 1
//! assert_eq!(reader.epoch, 0);               // the old snapshot keeps serving epoch 0
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

use cqt_core::ExecScratch;
use cqt_trees::edit::{EditError, EditScript, EditSummary};
use cqt_trees::{PreparedTree, Tree};

use crate::durability::{DocWal, DurabilityStats};
use crate::plan::{Plan, PlanOptions};
use crate::stats::{answer_fingerprint, MutationReport};
use crate::workload::QuerySpec;

/// One reader's view of a [`CorpusHandle`]: an immutable epoch.
#[derive(Clone, Debug)]
pub struct CorpusSnapshot {
    /// The epoch number (0 for the initial document; +1 per commit).
    pub epoch: u64,
    /// The epoch's prepared tree, shared with every other reader of the
    /// same epoch.
    pub prepared: Arc<PreparedTree>,
}

/// What one [`CorpusHandle::commit`] did — consumed by reports and the
/// invalidation tests.
#[derive(Clone, Debug)]
pub struct CommitReport {
    /// The epoch the commit created.
    pub epoch: u64,
    /// Structure hash of the replaced epoch.
    pub previous_structure_hash: u64,
    /// Structure hash of the new epoch (differs whenever the script changed
    /// anything).
    pub structure_hash: u64,
    /// Cache entries adopted from the previous epoch
    /// ([`PreparedTree::carried_relations`]).
    pub carried_relations: u64,
    /// Label sets adopted from the previous epoch.
    pub carried_label_sets: u64,
    /// The applied script's invalidation summary.
    pub summary: EditSummary,
}

/// A mutable document served by epoch swapping. See the [module
/// docs](self).
#[derive(Debug)]
pub struct CorpusHandle {
    current: RwLock<CorpusSnapshot>,
    /// Serializes writers; readers never touch it.
    writer: Mutex<()>,
    /// The document's write-ahead log, when the owning corpus is durable.
    /// Appended (and fsync'd) inside [`CorpusHandle::commit`] *before* the
    /// epoch swap: a commit is durable before it is visible.
    wal: Option<DocWal>,
}

impl CorpusHandle {
    /// A handle whose epoch 0 is `tree`.
    pub fn new(tree: Tree) -> Self {
        Self::from_prepared(Arc::new(PreparedTree::new(tree)))
    }

    /// A handle whose epoch 0 is an already-prepared tree (its caches are
    /// served as-is).
    pub fn from_prepared(prepared: Arc<PreparedTree>) -> Self {
        CorpusHandle {
            current: RwLock::new(CorpusSnapshot { epoch: 0, prepared }),
            writer: Mutex::new(()),
            wal: None,
        }
    }

    /// A handle serving `tree` at `epoch` (not necessarily 0 — a recovered
    /// document resumes at the epoch its durable state reached), optionally
    /// logging further commits to `wal`.
    pub(crate) fn recovered(tree: Tree, epoch: u64, wal: Option<DocWal>) -> Self {
        CorpusHandle {
            current: RwLock::new(CorpusSnapshot {
                epoch,
                prepared: Arc::new(PreparedTree::new(tree)),
            }),
            writer: Mutex::new(()),
            wal,
        }
    }

    /// The durability counters of this document's log, if it has one.
    pub(crate) fn wal_stats(&self) -> Option<DurabilityStats> {
        self.wal.as_ref().map(DocWal::stats)
    }

    /// The document's log, if it has one (used by corpus-level removal to
    /// delete the on-disk directory).
    pub(crate) fn wal(&self) -> Option<&DocWal> {
        self.wal.as_ref()
    }

    /// The current epoch's snapshot. The read lock is held only while the
    /// `Arc` is cloned; evaluation against the snapshot runs lock-free.
    pub fn snapshot(&self) -> CorpusSnapshot {
        self.current.read().expect("corpus lock poisoned").clone()
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("corpus lock poisoned").epoch
    }

    /// The current epoch's structure hash.
    pub fn structure_hash(&self) -> u64 {
        self.current
            .read()
            .expect("corpus lock poisoned")
            .prepared
            .structure_hash()
    }

    /// Applies `script` to the current epoch and swaps in the result as the
    /// next epoch. Readers holding the previous snapshot keep serving it;
    /// new snapshots see the new epoch. Commits are all-or-nothing: a script
    /// that fails validation leaves the corpus untouched.
    ///
    /// Concurrent commits are serialized (last writer builds on the epoch
    /// the previous writer installed).
    ///
    /// On a durable handle the commit record is appended to the
    /// write-ahead log and fsync'd **before** the epoch swap, so a commit
    /// is never visible to a reader unless it would survive a crash. Log
    /// I/O failures are fail-stop (they panic — see
    /// [`crate::durability`]); script validation failures stay ordinary
    /// typed errors and leave both the corpus and the log untouched.
    pub fn commit(&self, script: &EditScript) -> Result<CommitReport, EditError> {
        let _writer = self.writer.lock().expect("corpus writer lock poisoned");
        let before = self.snapshot();
        let (tree, summary) = script.apply_to(before.prepared.tree())?;
        let prepared = Arc::new(before.prepared.prepare_edited(tree, &summary));
        let report = CommitReport {
            epoch: before.epoch + 1,
            previous_structure_hash: before.prepared.structure_hash(),
            structure_hash: prepared.structure_hash(),
            carried_relations: prepared.carried_relations(),
            carried_label_sets: prepared.carried_label_sets(),
            summary,
        };
        if let Some(wal) = &self.wal {
            wal.append(
                report.epoch,
                report.previous_structure_hash,
                report.structure_hash,
                script,
            );
        }
        let committed = Arc::clone(&prepared);
        *self.current.write().expect("corpus lock poisoned") = CorpusSnapshot {
            epoch: report.epoch,
            prepared,
        };
        if let Some(wal) = &self.wal {
            wal.maybe_snapshot(report.epoch, committed.tree());
        }
        Ok(report)
    }
}

/// Ground truth for a mutation run: the expected answer fingerprint of every
/// (query, epoch) pair, derived by replaying the scripts single-threaded.
///
/// Epoch trees are replayed through exactly the applier the corpus commit
/// uses, so node numbering matches and fingerprints are comparable. The
/// epoch-consistency property this checks is the strong one: a concurrent
/// reader's answer must equal the oracle answer *of the epoch it snapshot* —
/// it may be pre- or post-edit depending on timing, but never a blend of
/// the two.
#[derive(Clone, Debug)]
pub struct MutationOracle {
    expected: BTreeMap<(usize, u64), u64>,
    epochs: u64,
}

impl MutationOracle {
    /// Replays `scripts` from `initial` and evaluates every query at every
    /// epoch.
    pub fn build(
        initial: &Tree,
        scripts: &[EditScript],
        queries: &[QuerySpec],
        options: &PlanOptions,
    ) -> Result<Self, EditError> {
        let plans: Vec<Plan> = queries
            .iter()
            .map(|spec| Plan::compile(spec, options).0)
            .collect();
        let mut scratch = ExecScratch::new();
        let mut expected = BTreeMap::new();
        let mut tree = initial.clone();
        for epoch in 0..=scripts.len() as u64 {
            if epoch > 0 {
                tree = scripts[epoch as usize - 1].apply_to(&tree)?.0;
            }
            let prepared = PreparedTree::new(tree.clone());
            for (query_index, plan) in plans.iter().enumerate() {
                let answer = plan.execute(&prepared, &mut scratch);
                expected.insert(
                    (query_index, epoch),
                    answer_fingerprint(query_index as u64, &answer),
                );
            }
        }
        Ok(MutationOracle {
            expected,
            epochs: scripts.len() as u64 + 1,
        })
    }

    /// Number of epochs the oracle covers (scripts + 1).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The expected fingerprint of `query` at `epoch`.
    pub fn expected(&self, query: usize, epoch: u64) -> Option<u64> {
        self.expected.get(&(query, epoch)).copied()
    }

    /// Verifies that every answer a mutation run observed matches the oracle
    /// answer of the exact epoch the reader snapshot — the epoch-consistency
    /// property.
    pub fn check(&self, report: &MutationReport) -> Result<(), String> {
        for &(query, epoch, fingerprint) in &report.observations {
            match self.expected.get(&(query, epoch)) {
                Some(&want) if want == fingerprint => {}
                Some(&want) => {
                    return Err(format!(
                        "query {query} at epoch {epoch}: observed answer fingerprint \
                         {fingerprint:#018x} but the oracle says {want:#018x} — a blended \
                         or stale answer"
                    ))
                }
                None => {
                    return Err(format!(
                        "query {query} observed at unknown epoch {epoch} \
                         (oracle covers 0..{})",
                        self.epochs
                    ))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqt_trees::edit::TreeEdit;
    use cqt_trees::parse::parse_term;

    #[test]
    fn commits_swap_epochs_and_keep_old_snapshots_alive() {
        let corpus = CorpusHandle::new(parse_term("R(A(B), C)").unwrap());
        let before = corpus.snapshot();
        assert_eq!(before.epoch, 0);
        let report = corpus
            .commit(&EditScript::single(TreeEdit::InsertSubtree {
                parent_pre: 0,
                position: 2,
                subtree: Box::new(parse_term("D").unwrap()),
            }))
            .unwrap();
        assert_eq!(report.epoch, 1);
        assert_ne!(report.structure_hash, report.previous_structure_hash);
        assert_eq!(corpus.epoch(), 1);
        assert_eq!(corpus.structure_hash(), report.structure_hash);
        // The pre-commit snapshot still serves the old document.
        assert_eq!(before.prepared.tree().len(), 4);
        assert_eq!(corpus.snapshot().prepared.tree().len(), 5);
        assert_eq!(
            before.prepared.structure_hash(),
            report.previous_structure_hash
        );
    }

    #[test]
    fn failed_commits_leave_the_corpus_untouched() {
        let corpus = CorpusHandle::new(parse_term("R(A)").unwrap());
        let hash = corpus.structure_hash();
        let err = corpus
            .commit(&EditScript::single(TreeEdit::DeleteSubtree { node_pre: 0 }))
            .unwrap_err();
        assert_eq!(err, EditError::DeleteRoot);
        assert_eq!(corpus.epoch(), 0);
        assert_eq!(corpus.structure_hash(), hash);
    }

    #[test]
    fn relabel_commit_reports_carried_caches() {
        let corpus = CorpusHandle::new(parse_term("R(A(B), C)").unwrap());
        // Warm a relation and a label set on epoch 0.
        let snapshot = corpus.snapshot();
        snapshot.prepared.relation(cqt_trees::Axis::ChildPlus);
        snapshot.prepared.label_pre_set_by_name("C");
        let report = corpus
            .commit(&EditScript::single(TreeEdit::Relabel {
                node_pre: 2,
                labels: vec!["E".into()],
            }))
            .unwrap();
        assert!(report.summary.keeps_structure());
        assert_eq!(report.carried_relations, 1);
        assert_eq!(report.carried_label_sets, 1);
    }

    #[test]
    fn oracle_tracks_every_epoch() {
        let initial = parse_term("R(A(B), C)").unwrap();
        let scripts = vec![
            EditScript::single(TreeEdit::InsertSubtree {
                parent_pre: 1,
                position: 1,
                subtree: Box::new(parse_term("B").unwrap()),
            }),
            EditScript::single(TreeEdit::DeleteSubtree { node_pre: 2 }),
        ];
        let queries = vec![QuerySpec::parse_cq("Q(x) :- B(x).").unwrap()];
        let oracle =
            MutationOracle::build(&initial, &scripts, &queries, &PlanOptions::default()).unwrap();
        assert_eq!(oracle.epochs(), 3);
        // Epoch 0 has one B, epoch 1 two, epoch 2 one again: the
        // fingerprints must differ between epochs 0 and 1 even for the same
        // query.
        assert_ne!(oracle.expected(0, 0), oracle.expected(0, 1));
        assert!(oracle.expected(0, 2).is_some());
        assert!(oracle.expected(1, 0).is_none());
    }
}
