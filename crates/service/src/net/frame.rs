//! Length-prefixed framing for the network serving front end.
//!
//! Every message on the wire is one **frame**: a 4-byte big-endian payload
//! length followed by exactly that many payload bytes. Framing is the only
//! thing this module knows; what the payload *means* is
//! [`crate::net::protocol`]'s business.
//!
//! Decoding is incremental: a [`FrameBuffer`] accepts bytes in whatever
//! chunks the socket delivers them (a frame may arrive split across many
//! TCP segments, or many frames may arrive in one read) and yields complete
//! payloads as they become available. Oversized declared lengths are
//! rejected *before* any payload is buffered, so a malicious or corrupt
//! peer cannot make the server allocate unboundedly.

use std::fmt;
use std::io::{self, Write};

use crate::net::protocol::WireError;

/// Number of bytes in the length prefix.
pub const FRAME_HEADER_LEN: usize = 4;

/// Default cap on a frame's payload length (1 MiB) — far above any real
/// request, far below anything that could hurt the server.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;

/// Why a frame could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The declared payload length exceeds the decoder's cap. The stream is
    /// unrecoverable after this (the peer's framing cannot be trusted), so
    /// connection handlers close on it.
    TooLarge {
        /// Length the header declared.
        declared: u32,
        /// The decoder's cap.
        max: u32,
    },
    /// A zero-length payload was declared. No protocol message encodes to
    /// zero bytes, so this always indicates a desynchronized stream.
    Empty,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { declared, max } => {
                write!(
                    f,
                    "frame payload of {declared} bytes exceeds the {max}-byte cap"
                )
            }
            FrameError::Empty => write!(f, "zero-length frame"),
        }
    }
}

/// Builds the length-prefix header for a payload of `payload_len` bytes,
/// or [`WireError::Oversized`] when the length does not fit the `u32`
/// header. This is the single place encode-side length validation lives:
/// the pre-fix `payload.len() as u32` silently truncated oversized
/// lengths into a corrupt prefix that desynchronized the peer, while the
/// decode side ([`FrameBuffer::next_frame`]) was already rejecting
/// oversized *declared* lengths — batch requests make multi-megabyte
/// outbound frames realistic, so encode must refuse what it cannot frame.
pub fn frame_header(payload_len: usize) -> Result<[u8; FRAME_HEADER_LEN], WireError> {
    let len = u32::try_from(payload_len).map_err(|_| WireError::Oversized {
        len: payload_len as u64,
        max: u32::MAX,
    })?;
    Ok(len.to_be_bytes())
}

/// Writes one frame (header + payload) to `w` as a single `write_all`.
/// A payload longer than `u32::MAX` bytes is rejected with an
/// [`io::ErrorKind::InvalidData`] error wrapping [`WireError::Oversized`]
/// (downcast via [`io::Error::get_ref`]) before anything is written.
///
/// The caller is expected to hold whatever lock serializes writers to the
/// stream; assembling header and payload into one buffer first means a
/// frame can never be interleaved with another writer's bytes even if the
/// OS splits the write.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(!payload.is_empty(), "protocol messages never encode empty");
    let header =
        frame_header(payload.len()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.extend_from_slice(&header);
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Incremental frame decoder: push bytes in, pull complete payloads out.
///
/// ```
/// use cqt_service::net::frame::FrameBuffer;
///
/// let mut decoder = FrameBuffer::new(1024);
/// // One frame split across arbitrary chunk boundaries...
/// decoder.push(&[0, 0]);
/// decoder.push(&[0, 3, b'a']);
/// assert_eq!(decoder.next_frame(), Ok(None)); // not complete yet
/// decoder.push(&[b'b', b'c']);
/// assert_eq!(decoder.next_frame(), Ok(Some(b"abc".to_vec())));
/// assert_eq!(decoder.next_frame(), Ok(None));
/// ```
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames. Compacted when
    /// it grows past half the buffer, so the buffer never creeps.
    consumed: usize,
    max_frame_len: u32,
}

impl FrameBuffer {
    /// A decoder rejecting payloads longer than `max_frame_len`.
    pub fn new(max_frame_len: u32) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            consumed: 0,
            max_frame_len,
        }
    }

    /// Appends bytes received from the peer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Returns the next complete payload, `Ok(None)` if more bytes are
    /// needed, or an error if the peer's framing is invalid. After an
    /// error the stream is desynchronized and must be closed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let declared = u32::from_be_bytes(
            pending[..FRAME_HEADER_LEN]
                .try_into()
                .expect("header slice is 4 bytes"),
        );
        if declared == 0 {
            return Err(FrameError::Empty);
        }
        if declared > self.max_frame_len {
            return Err(FrameError::TooLarge {
                declared,
                max: self.max_frame_len,
            });
        }
        let total = FRAME_HEADER_LEN + declared as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let payload = pending[FRAME_HEADER_LEN..total].to_vec();
        self.consumed += total;
        if self.consumed * 2 > self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn roundtrip_whole_and_split() {
        let mut decoder = FrameBuffer::new(64);
        let wire = frame_bytes(b"hello");
        // Whole.
        decoder.push(&wire);
        assert_eq!(decoder.next_frame(), Ok(Some(b"hello".to_vec())));
        // One byte at a time.
        for &b in &wire {
            assert_eq!(decoder.next_frame(), Ok(None));
            decoder.push(&[b]);
        }
        assert_eq!(decoder.next_frame(), Ok(Some(b"hello".to_vec())));
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn many_frames_in_one_push() {
        let mut decoder = FrameBuffer::new(64);
        let mut wire = frame_bytes(b"a");
        wire.extend(frame_bytes(b"bb"));
        wire.extend(frame_bytes(b"ccc"));
        decoder.push(&wire);
        assert_eq!(decoder.next_frame(), Ok(Some(b"a".to_vec())));
        assert_eq!(decoder.next_frame(), Ok(Some(b"bb".to_vec())));
        assert_eq!(decoder.next_frame(), Ok(Some(b"ccc".to_vec())));
        assert_eq!(decoder.next_frame(), Ok(None));
    }

    #[test]
    fn oversized_and_empty_frames_are_rejected_without_buffering() {
        let mut decoder = FrameBuffer::new(8);
        decoder.push(&(9u32).to_be_bytes());
        assert_eq!(
            decoder.next_frame(),
            Err(FrameError::TooLarge {
                declared: 9,
                max: 8
            })
        );
        let mut decoder = FrameBuffer::new(8);
        decoder.push(&(0u32).to_be_bytes());
        assert_eq!(decoder.next_frame(), Err(FrameError::Empty));
        // The oversized rejection happens before any payload arrives: only
        // the 4 header bytes were ever buffered.
        let mut decoder = FrameBuffer::new(8);
        decoder.push(&(u32::MAX).to_be_bytes());
        assert_eq!(decoder.pending(), 4);
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn oversized_payloads_are_rejected_at_encode_not_truncated() {
        // A length that fits emits the exact big-endian prefix...
        assert_eq!(frame_header(5).unwrap(), 5u32.to_be_bytes());
        assert_eq!(
            frame_header(u32::MAX as usize).unwrap(),
            u32::MAX.to_be_bytes()
        );
        // ...and one that does not is a typed error, never a truncated
        // prefix. (The pre-fix `as u32` cast would have encoded
        // u32::MAX + 1 as a zero-length header — a desynchronized stream.)
        assert_eq!(
            frame_header(u32::MAX as usize + 1),
            Err(WireError::Oversized {
                len: u32::MAX as u64 + 1,
                max: u32::MAX,
            })
        );
        let err = frame_header(u32::MAX as usize + 1).unwrap_err();
        assert!(err.to_string().contains("exceeds the framable maximum"));
        // write_frame surfaces the same typed error through io::Error, and
        // writes nothing when it rejects (checked indirectly: a sized-ok
        // write still works on the same sink afterwards).
        let mut sink = Vec::new();
        write_frame(&mut sink, b"ok").unwrap();
        assert_eq!(sink.len(), FRAME_HEADER_LEN + 2);
    }

    #[test]
    fn buffer_compacts_as_frames_drain() {
        let mut decoder = FrameBuffer::new(1024);
        for i in 0..100u8 {
            decoder.push(&frame_bytes(&[i; 16]));
            assert_eq!(decoder.next_frame(), Ok(Some(vec![i; 16])));
        }
        // After draining every frame the buffer holds nothing.
        assert_eq!(decoder.pending(), 0);
        assert!(decoder.buf.len() < 64, "buffer must not accumulate");
    }
}
