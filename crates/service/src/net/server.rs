//! The TCP serving front end: accept loop, per-connection readers, and the
//! worker pool draining the bounded admission queue into the sharded
//! [`Corpus`].
//!
//! Threading model (all `std::thread`, no registry deps):
//!
//! * one **accept** thread owns the `TcpListener` and spawns a **reader**
//!   thread per connection;
//! * each reader decodes frames incrementally ([`crate::net::frame`]),
//!   parses requests, and either answers directly (ping/stats/parse
//!   errors/SHED) or admits a job to the shared [`BoundedQueue`] — requests
//!   on one connection are **pipelined**: the reader keeps admitting while
//!   earlier answers are still executing, and responses carry the request
//!   id because they may complete out of order;
//! * a fixed pool of **worker** threads pops jobs, executes the query
//!   against every selected document (snapshot → plan-cache lookup tagged
//!   with the document identity → evaluate), and writes the answer back on
//!   the job's connection.
//!
//! Latency accounting: a job's `queue_ns` is the time from admission to the
//! moment a worker picks it up, `exec_ns` is the scatter–gather execution
//! time, and `total_ns` is **exactly** their sum — the server-side
//! nanoseconds are fully attributed to queueing or execution, an invariant
//! the load generator and CI verify on every response.
//!
//! Backpressure: admission is the only place requests can pile up, the
//! queue is bounded, and overflow is answered with an explicit
//! [`Response::Shed`] carrying the observed depth and capacity. Admitted
//! jobs are never abandoned: shutdown closes the queue and the workers
//! drain what was admitted before exiting.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cqt_core::{BatchScratch, ExecScratch};

use crate::batch::PreparedBatch;
use crate::durability::DurabilityStats;
use crate::net::frame::{write_frame, FrameBuffer, DEFAULT_MAX_FRAME_LEN};
use crate::net::protocol::{Request, Response, WireLang};
use crate::net::queue::{BoundedQueue, PushError};
use crate::plan::{PlanCache, PlanCacheStats, PlanKey, PlanOptions};
use crate::replication::replicate_stream;
use crate::runner::should_prune;
use crate::shard::{Corpus, FanOut};
use crate::stats::{answer_fingerprint, PruneStats, ReplicationStats};
use crate::workload::QuerySpec;

/// Configuration of a [`NetServer`].
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Worker threads executing admitted queries.
    pub workers: usize,
    /// Admission-queue capacity; requests arriving while the queue holds
    /// this many jobs are shed.
    pub queue_capacity: usize,
    /// Cap on a frame's payload length (see [`crate::net::frame`]).
    pub max_frame_len: u32,
    /// Start with the worker pool paused (admission still runs). Used by
    /// the deterministic overload tests: a paused server fills its queue,
    /// sheds the overflow, and executes the admitted jobs only after
    /// [`ServerHandle::resume`].
    pub start_paused: bool,
    /// Plan-compilation options.
    pub plan: PlanOptions,
    /// Prune fan-out with the corpus [`crate::index::LabelIndex`] before
    /// executing (default: on). Pruned documents still contribute their
    /// (provably empty) answers to the response fingerprint, so digests are
    /// identical either way.
    pub prune: bool,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            workers: 2,
            queue_capacity: 64,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            start_paused: false,
            plan: PlanOptions::default(),
            prune: true,
        }
    }
}

/// A snapshot of the server's cumulative counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries admitted to the queue.
    pub admitted: u64,
    /// Admitted queries fully executed and answered.
    pub executed: u64,
    /// Queries shed at admission.
    pub shed: u64,
    /// Malformed requests answered with an error.
    pub errors: u64,
    /// Queue depth at the time of the snapshot.
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub capacity: usize,
    /// Plan-cache counters at the time of the snapshot.
    pub plan_cache: PlanCacheStats,
    /// Index-pruning counters at the time of the snapshot.
    pub prune: PruneStats,
    /// Durability counters at the time of the snapshot (all zero on an
    /// in-memory corpus).
    pub wal: DurabilityStats,
    /// Replication counters at the time of the snapshot (all zero on a
    /// server that never served a `REPLICATE`).
    pub replication: ReplicationStats,
}

/// What an admitted job executes: one query, or a whole batch sharing one
/// fan-out. A batch occupies **one** queue slot — admission is
/// all-or-nothing, so a shed batch sheds every query in it and a parse
/// error anywhere in the frame admits nothing.
enum JobKind {
    Single {
        spec: QuerySpec,
        fp_key: u64,
    },
    Batch {
        /// `(spec, fp_key)` per query, in request order.
        queries: Vec<(QuerySpec, u64)>,
    },
}

/// One admitted job: everything a worker needs to execute and answer it.
struct Job {
    id: u64,
    kind: JobKind,
    target: FanOut,
    admitted_at: Instant,
    out: Arc<Mutex<TcpStream>>,
}

/// State shared by the accept loop, readers, and workers.
struct Shared {
    corpus: Arc<Corpus>,
    queue: BoundedQueue<Job>,
    cache: PlanCache,
    plan: PlanOptions,
    prune: bool,
    stop: AtomicBool,
    /// `true` while the worker pool is paused; workers wait on the condvar
    /// before each pop.
    paused: Mutex<bool>,
    unpaused: Condvar,
    admitted: AtomicU64,
    executed: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    prune_candidates: AtomicU64,
    prune_pruned: AtomicU64,
    prune_survivors: AtomicU64,
    prune_false_positives: AtomicU64,
    repl_requests: AtomicU64,
    repl_records: AtomicU64,
    repl_snapshots: AtomicU64,
    /// Lag observed at the start of the most recent replication stream
    /// (stored, not accumulated — it is a gauge, not a counter).
    repl_lag_epochs: AtomicU64,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            queue_depth: self.queue.depth(),
            capacity: self.queue.capacity(),
            plan_cache: self.cache.stats(),
            prune: PruneStats {
                candidates: self.prune_candidates.load(Ordering::Relaxed),
                pruned: self.prune_pruned.load(Ordering::Relaxed),
                survivors: self.prune_survivors.load(Ordering::Relaxed),
                false_positives: self.prune_false_positives.load(Ordering::Relaxed),
            },
            wal: self.corpus.durability_stats(),
            replication: ReplicationStats {
                requests: self.repl_requests.load(Ordering::Relaxed),
                records_streamed: self.repl_records.load(Ordering::Relaxed),
                snapshots_streamed: self.repl_snapshots.load(Ordering::Relaxed),
                lag_epochs: self.repl_lag_epochs.load(Ordering::Relaxed),
            },
        }
    }
}

/// Writes `response` on the connection, serialized by the per-connection
/// write lock. A failed write means the peer is gone; the job's work is
/// done either way, so the error is dropped.
fn respond(out: &Mutex<TcpStream>, response: &Response) {
    let payload = response.encode();
    let mut stream = out.lock().expect("connection write lock");
    let _ = write_frame(&mut *stream, &payload);
}

/// The TCP front end. [`NetServer::start`] binds a listener and spawns the
/// threads; the returned [`ServerHandle`] owns them.
///
/// ```
/// use std::sync::Arc;
/// use cqt_service::net::{NetServer, NetServerConfig};
/// use cqt_service::shard::Corpus;
/// use cqt_trees::parse::parse_term;
///
/// let corpus = Arc::new(Corpus::new(2));
/// corpus.insert("doc", parse_term("R(A(B), C)").unwrap()).unwrap();
/// let handle = NetServer::start(corpus, NetServerConfig::default()).unwrap();
/// assert_ne!(handle.addr().port(), 0);
/// handle.shutdown();
/// ```
pub struct NetServer;

impl NetServer {
    /// Binds `127.0.0.1:0` (an OS-assigned port) and starts serving
    /// `corpus` with `config`.
    pub fn start(corpus: Arc<Corpus>, config: NetServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            corpus,
            queue: BoundedQueue::new(config.queue_capacity.max(1)),
            cache: PlanCache::new(),
            plan: config.plan.clone(),
            prune: config.prune,
            stop: AtomicBool::new(false),
            paused: Mutex::new(config.start_paused),
            unpaused: Condvar::new(),
            admitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            prune_candidates: AtomicU64::new(0),
            prune_pruned: AtomicU64::new(0),
            prune_survivors: AtomicU64::new(0),
            prune_false_positives: AtomicU64::new(0),
            repl_requests: AtomicU64::new(0),
            repl_records: AtomicU64::new(0),
            repl_snapshots: AtomicU64::new(0),
            repl_lag_epochs: AtomicU64::new(0),
        });
        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let workers: Vec<_> = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            let max_frame_len = config.max_frame_len;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    let reader = std::thread::spawn(move || {
                        connection_loop(&shared, stream, max_frame_len);
                    });
                    readers.lock().expect("reader registry lock").push(reader);
                }
            })
        };

        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
            readers,
        })
    }
}

/// Owns the server's threads; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Unpauses the worker pool (a no-op if it was never paused).
    pub fn resume(&self) {
        let mut paused = self.shared.paused.lock().expect("pause lock");
        *paused = false;
        drop(paused);
        self.shared.unpaused.notify_all();
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Stops accepting, drains every **admitted** job (workers finish and
    /// answer them), and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::Relaxed);
        // A paused pool must not deadlock shutdown.
        self.resume();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        // Readers notice the stop flag within one read-timeout tick; join
        // them before closing the queue so no producer outlives it.
        for reader in self.readers.lock().expect("reader registry lock").drain(..) {
            let _ = reader.join();
        }
        // Closing the queue lets workers drain what was admitted, answer
        // it, and exit.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// One connection's read half: incremental frame decode, request parsing,
/// admission.
fn connection_loop(shared: &Shared, stream: TcpStream, max_frame_len: u32) {
    // A short read timeout turns the blocking read into a poll of the stop
    // flag; the frame decoder is incremental, so a timeout mid-frame loses
    // nothing.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let out = Arc::new(Mutex::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    }));
    let mut read_half = stream;
    let mut decoder = FrameBuffer::new(max_frame_len);
    let mut chunk = [0u8; 4096];
    'conn: loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        match read_half.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                decoder.push(&chunk[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(payload)) => handle_payload(shared, &payload, &out),
                        Ok(None) => break,
                        // Framing is unrecoverable (oversized/zero length):
                        // the stream is desynchronized, close it.
                        Err(_) => break 'conn,
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

/// Decodes and dispatches one frame payload.
fn handle_payload(shared: &Shared, payload: &[u8], out: &Arc<Mutex<TcpStream>>) {
    let request = match Request::decode(payload) {
        Ok(request) => request,
        Err(error) => {
            // Framing is still synchronized, so answer and keep the
            // connection; id 0 because the malformed payload's id cannot be
            // trusted.
            shared.errors.fetch_add(1, Ordering::Relaxed);
            respond(
                out,
                &Response::Error {
                    id: 0,
                    message: format!("malformed request: {error}"),
                },
            );
            return;
        }
    };
    match request {
        // Control-plane requests bypass the queue: they must answer even
        // (especially) when the data plane is saturated.
        Request::Ping { id } => respond(out, &Response::Pong { id }),
        Request::Stats { id } => {
            let stats = shared.stats();
            respond(
                out,
                &Response::Stats {
                    id,
                    admitted: stats.admitted,
                    executed: stats.executed,
                    shed: stats.shed,
                    errors: stats.errors,
                    queue_depth: stats.queue_depth as u32,
                    capacity: stats.capacity as u32,
                    plan_hits: stats.plan_cache.hits,
                    plan_misses: stats.plan_cache.misses,
                    plan_analyses: stats.plan_cache.analyses,
                    plan_cross_document_hits: stats.plan_cache.cross_document_hits,
                    prune_candidates: stats.prune.candidates,
                    prune_pruned: stats.prune.pruned,
                    prune_survivors: stats.prune.survivors,
                    prune_false_positives: stats.prune.false_positives,
                    wal_records: stats.wal.log_records,
                    wal_bytes: stats.wal.log_bytes,
                    snapshot_epoch: stats.wal.snapshot_epoch,
                    repl_requests: stats.replication.requests,
                    repl_records: stats.replication.records_streamed,
                    repl_snapshots: stats.replication.snapshots_streamed,
                    repl_lag_epochs: stats.replication.lag_epochs,
                },
            );
        }
        // Replication streams inline on this connection's reader thread:
        // it bypasses the query queue (never queued, never shed) and
        // blocks this reader until the stream completes, so a follower
        // should subscribe on a dedicated connection.
        Request::Replicate { id, positions } => {
            shared.repl_requests.fetch_add(1, Ordering::Relaxed);
            let result = replicate_stream(&shared.corpus, id, &positions, &mut |frame| {
                let payload = frame.encode();
                let mut stream = out.lock().expect("connection write lock");
                write_frame(&mut *stream, &payload).is_ok()
            });
            match result {
                Ok(totals) => {
                    shared
                        .repl_records
                        .fetch_add(totals.records, Ordering::Relaxed);
                    shared
                        .repl_snapshots
                        .fetch_add(totals.snapshots as u64, Ordering::Relaxed);
                    shared
                        .repl_lag_epochs
                        .store(totals.lag_epochs, Ordering::Relaxed);
                }
                Err(message) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    respond(out, &Response::Error { id, message });
                }
            }
        }
        Request::Query {
            id,
            lang,
            text,
            fanout,
            fp_key,
        } => {
            let spec = match lang {
                WireLang::Cq => QuerySpec::parse_cq(&text),
                WireLang::XPath => QuerySpec::parse_xpath(&text),
            };
            let spec = match spec {
                Ok(spec) => spec,
                Err(message) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    respond(out, &Response::Error { id, message });
                    return;
                }
            };
            admit(
                shared,
                Job {
                    id,
                    kind: JobKind::Single { spec, fp_key },
                    target: fanout.into_fanout(),
                    admitted_at: Instant::now(),
                    out: Arc::clone(out),
                },
            );
        }
        Request::Batch {
            id,
            fanout,
            queries,
        } => {
            // Parse every query before admitting anything: a bad spec
            // anywhere fails the whole frame, so a batch is never
            // half-admitted.
            let mut parsed = Vec::with_capacity(queries.len());
            for (q, query) in queries.into_iter().enumerate() {
                let spec = match query.lang {
                    WireLang::Cq => QuerySpec::parse_cq(&query.text),
                    WireLang::XPath => QuerySpec::parse_xpath(&query.text),
                };
                match spec {
                    Ok(spec) => parsed.push((spec, query.fp_key)),
                    Err(message) => {
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        respond(
                            out,
                            &Response::Error {
                                id,
                                message: format!("batch query {q}: {message}"),
                            },
                        );
                        return;
                    }
                }
            }
            admit(
                shared,
                Job {
                    id,
                    kind: JobKind::Batch { queries: parsed },
                    target: fanout.into_fanout(),
                    admitted_at: Instant::now(),
                    out: Arc::clone(out),
                },
            );
        }
    }
}

/// Pushes one parsed job onto the admission queue, answering Shed/Error in
/// place on overflow or shutdown. A batch occupies one slot and is shed as
/// a unit.
fn admit(shared: &Shared, job: Job) {
    let id = job.id;
    let out = Arc::clone(&job.out);
    match shared.queue.try_push(job) {
        Ok(()) => {
            shared.admitted.fetch_add(1, Ordering::Relaxed);
        }
        Err(PushError::Full { depth, capacity }) => {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            respond(
                &out,
                &Response::Shed {
                    id,
                    queue_depth: depth as u32,
                    capacity: capacity as u32,
                },
            );
        }
        Err(PushError::Closed) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            respond(
                &out,
                &Response::Error {
                    id,
                    message: "server shutting down".to_string(),
                },
            );
        }
    }
}

/// One worker: gate on the pause flag, pop, execute, answer, repeat until
/// the queue closes and drains.
fn worker_loop(shared: &Shared) {
    let mut scratch = ExecScratch::new();
    let mut batch_scratch = BatchScratch::new();
    loop {
        {
            let mut paused = shared.paused.lock().expect("pause lock");
            while *paused {
                paused = shared.unpaused.wait(paused).expect("pause lock");
            }
        }
        let Some(job) = shared.queue.pop() else { break };
        // Everything between admission and this moment — including any
        // pause — is queueing; everything after is execution. total is the
        // exact sum, so the two components account for every server-side
        // nanosecond.
        let queue_ns = job.admitted_at.elapsed().as_nanos() as u64;
        let exec_start = Instant::now();
        let documents = shared.corpus.select(&job.target);
        let mut prune = PruneStats::default();
        let response = match &job.kind {
            JobKind::Single { spec, fp_key } => {
                let fingerprint =
                    execute_single(shared, spec, *fp_key, &documents, &mut scratch, &mut prune);
                let exec_ns = exec_start.elapsed().as_nanos() as u64;
                Response::Answer {
                    id: job.id,
                    fingerprint,
                    docs: documents.len() as u32,
                    queue_ns,
                    exec_ns,
                    total_ns: queue_ns + exec_ns,
                }
            }
            JobKind::Batch { queries } => {
                let fingerprints =
                    execute_batch(shared, queries, &documents, &mut batch_scratch, &mut prune);
                let exec_ns = exec_start.elapsed().as_nanos() as u64;
                Response::BatchAnswer {
                    id: job.id,
                    docs: documents.len() as u32,
                    queue_ns,
                    exec_ns,
                    total_ns: queue_ns + exec_ns,
                    fingerprints,
                }
            }
        };
        shared
            .prune_candidates
            .fetch_add(prune.candidates, Ordering::Relaxed);
        shared
            .prune_pruned
            .fetch_add(prune.pruned, Ordering::Relaxed);
        shared
            .prune_survivors
            .fetch_add(prune.survivors, Ordering::Relaxed);
        shared
            .prune_false_positives
            .fetch_add(prune.false_positives, Ordering::Relaxed);
        shared.executed.fetch_add(1, Ordering::Relaxed);
        respond(&job.out, &response);
    }
}

/// Executes one query over the selected documents, returning its answer
/// fingerprint.
fn execute_single(
    shared: &Shared,
    spec: &QuerySpec,
    fp_key: u64,
    documents: &[Arc<crate::shard::Document>],
    scratch: &mut ExecScratch,
    prune: &mut PruneStats,
) -> u64 {
    let key = PlanKey::of_spec(spec).with_options(&shared.plan);
    // The pruning pre-pass: compile the plan once (document-independent)
    // and intersect the corpus label index's posting lists. Each
    // document's decision is still re-validated against its own snapshot
    // summary in the loop below, so a posting list racing a concurrent
    // commit can cost a wasted execution but never a wrong answer.
    let pruner = shared.prune.then(|| {
        let plan = shared.cache.get_or_compile(spec, &shared.plan);
        let empty = plan.empty_answer();
        let survivors = shared
            .corpus
            .label_index()
            .candidates(plan.required_labels());
        (plan, empty, survivors)
    });
    let mut fingerprint = 0u64;
    for (j, document) in documents.iter().enumerate() {
        // The same (fp_key, doc position) keying `run_corpus` uses with
        // its request index, so clients can compare digests against an
        // in-process run (wrapping, because fp_key is client-supplied).
        let fp_key = fp_key.wrapping_mul(1_000_003).wrapping_add(j as u64);
        let snapshot = document.handle().snapshot();
        if let Some((plan, empty, survivors)) = &pruner {
            prune.candidates += 1;
            let index_candidate = match survivors {
                Some(ids) => ids.contains(document.id()),
                None => true,
            };
            if should_prune(plan, index_candidate, snapshot.prepared.doc_summary()) {
                prune.pruned += 1;
                fingerprint = fingerprint.wrapping_add(answer_fingerprint(fp_key, empty));
                continue;
            }
            prune.survivors += 1;
        }
        let plan = shared.cache.get_or_compile_tagged(
            key.with_document(snapshot.prepared.structure_hash()),
            spec,
            &shared.plan,
            document.doc_tag(),
        );
        let answer = plan.execute(&snapshot.prepared, scratch);
        if let Some((_, empty, _)) = &pruner {
            if answer == *empty {
                prune.false_positives += 1;
            }
        }
        fingerprint = fingerprint.wrapping_add(answer_fingerprint(fp_key, &answer));
    }
    fingerprint
}

/// Executes a whole batch over the selected documents through one
/// [`PreparedBatch`] (snapshot once per document, dedup, shared-step
/// table, union-label pruning), returning one fingerprint per query in
/// request order. Each fingerprint folds with the **same**
/// `fp_key * 1_000_003 + doc_position` keying as [`execute_single`], so a
/// batch's k-th digest equals the digest of sending that query alone with
/// the same `fp_key`.
fn execute_batch(
    shared: &Shared,
    queries: &[(QuerySpec, u64)],
    documents: &[Arc<crate::shard::Document>],
    scratch: &mut BatchScratch,
    prune: &mut PruneStats,
) -> Vec<u64> {
    let specs: Vec<QuerySpec> = queries.iter().map(|(spec, _)| spec.clone()).collect();
    let batch = PreparedBatch::prepare(
        &specs,
        &shared.cache,
        &shared.plan,
        shared.prune.then(|| shared.corpus.label_index()),
    );
    let mut fingerprints = vec![0u64; queries.len()];
    let mut answers = Vec::with_capacity(queries.len());
    for (j, document) in documents.iter().enumerate() {
        answers.clear();
        batch.execute_document(document, scratch, &mut answers, prune);
        for (q, answer) in answers.iter().enumerate() {
            let fp_key = queries[q].1.wrapping_mul(1_000_003).wrapping_add(j as u64);
            fingerprints[q] = fingerprints[q].wrapping_add(answer_fingerprint(fp_key, answer));
        }
    }
    fingerprints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::frame::FRAME_HEADER_LEN;
    use crate::net::protocol::WireFanOut;
    use cqt_trees::parse::parse_term;
    use std::io::Write;

    fn test_corpus() -> Arc<Corpus> {
        let corpus = Arc::new(Corpus::new(2));
        corpus
            .insert("doc-a", parse_term("R(A(B), C)").unwrap())
            .unwrap();
        corpus
            .insert_tagged("doc-b", &["hot"], parse_term("R(A(B, B), A)").unwrap())
            .unwrap();
        corpus
    }

    /// Sends one request and reads one response, synchronously.
    fn call(stream: &mut TcpStream, request: &Request) -> Response {
        write_frame(stream, &request.encode()).unwrap();
        read_response(stream)
    }

    fn read_response(stream: &mut TcpStream) -> Response {
        let mut header = [0u8; FRAME_HEADER_LEN];
        stream.read_exact(&mut header).unwrap();
        let len = u32::from_be_bytes(header) as usize;
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).unwrap();
        Response::decode(&payload).unwrap()
    }

    #[test]
    fn serves_queries_pings_and_stats_over_a_real_socket() {
        let handle = NetServer::start(test_corpus(), NetServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(
            call(&mut stream, &Request::Ping { id: 1 }),
            Response::Pong { id: 1 }
        );
        let response = call(
            &mut stream,
            &Request::Query {
                id: 2,
                lang: WireLang::Cq,
                text: "Q(y) :- A(x), Child(x, y), B(y).".into(),
                fanout: WireFanOut::All,
                fp_key: 0,
            },
        );
        match response {
            Response::Answer {
                id,
                docs,
                queue_ns,
                exec_ns,
                total_ns,
                ..
            } => {
                assert_eq!(id, 2);
                assert_eq!(docs, 2);
                assert_eq!(queue_ns + exec_ns, total_ns, "accounting must sum");
            }
            other => panic!("expected answer, got {other:?}"),
        }
        // Tag fan-out touches only the tagged document.
        let response = call(
            &mut stream,
            &Request::Query {
                id: 3,
                lang: WireLang::XPath,
                text: "//A[B]".into(),
                fanout: WireFanOut::Tag("hot".into()),
                fp_key: 1,
            },
        );
        assert!(matches!(response, Response::Answer { id: 3, docs: 1, .. }));
        // An unknown document fans out to zero documents (the run_corpus
        // convention), not an error.
        let response = call(
            &mut stream,
            &Request::Query {
                id: 4,
                lang: WireLang::Cq,
                text: "Q() :- A(x).".into(),
                fanout: WireFanOut::Doc("missing".into()),
                fp_key: 2,
            },
        );
        assert!(matches!(response, Response::Answer { id: 4, docs: 0, .. }));
        match call(&mut stream, &Request::Stats { id: 5 }) {
            Response::Stats {
                id,
                admitted,
                executed,
                shed,
                errors,
                capacity,
                plan_misses,
                prune_candidates,
                prune_pruned,
                prune_survivors,
                ..
            } => {
                assert_eq!(id, 5);
                assert_eq!(admitted, 3);
                assert_eq!(executed, 3);
                assert_eq!(shed, 0);
                assert_eq!(errors, 0);
                assert_eq!(capacity, 64);
                assert!(plan_misses > 0, "queries compiled plans");
                // Three queries touched 2 + 1 + 0 documents; every document
                // in this corpus carries the required labels, so none prune.
                assert_eq!(prune_candidates, 3);
                assert_eq!(prune_pruned, 0);
                assert_eq!(prune_survivors, 3);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn pruned_and_unpruned_servers_agree_on_fingerprints() {
        // `doc-c` has no `B` anywhere: the label index prunes it for a
        // B-requiring query, and the pruned server must still produce the
        // exact fingerprint of the unpruned one.
        let corpus = || {
            let corpus = test_corpus();
            corpus
                .insert("doc-c", parse_term("R(C(C), C)").unwrap())
                .unwrap();
            corpus
        };
        let query = |id| Request::Query {
            id,
            lang: WireLang::Cq,
            text: "Q(y) :- A(x), Child(x, y), B(y).".into(),
            fanout: WireFanOut::All,
            fp_key: 42,
        };
        let run = |prune: bool| {
            let config = NetServerConfig {
                prune,
                ..NetServerConfig::default()
            };
            let handle = NetServer::start(corpus(), config).unwrap();
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let response = call(&mut stream, &query(1));
            let Response::Answer {
                fingerprint, docs, ..
            } = response
            else {
                panic!("expected answer, got {response:?}");
            };
            assert_eq!(docs, 3, "fan-out still reports every selected doc");
            let stats = handle.stats();
            handle.shutdown();
            (fingerprint, stats)
        };
        let (pruned_fp, pruned_stats) = run(true);
        let (unpruned_fp, unpruned_stats) = run(false);
        assert_eq!(pruned_fp, unpruned_fp, "pruning must not change answers");
        assert_eq!(pruned_stats.prune.candidates, 3);
        assert_eq!(pruned_stats.prune.pruned, 1, "doc-c lacks label B");
        assert_eq!(pruned_stats.prune.survivors, 2);
        assert_eq!(unpruned_stats.prune, PruneStats::default());
    }

    #[test]
    fn batch_answers_match_singles_and_bad_specs_admit_nothing() {
        use crate::net::protocol::WireQuery;
        let handle = NetServer::start(test_corpus(), NetServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let texts = [
            "Q(y) :- A(x), Child(x, y), B(y).",
            "Q() :- A(x).",
            // A repeat of the first query: dedups inside the batch but must
            // still answer under its own fp_key.
            "Q(y) :- A(x), Child(x, y), B(y).",
        ];
        // Reference fingerprints: each query sent alone with fp_key 10+q.
        let mut single_fps = Vec::new();
        for (q, text) in texts.iter().enumerate() {
            let response = call(
                &mut stream,
                &Request::Query {
                    id: q as u64,
                    lang: WireLang::Cq,
                    text: (*text).into(),
                    fanout: WireFanOut::All,
                    fp_key: 10 + q as u64,
                },
            );
            let Response::Answer { fingerprint, .. } = response else {
                panic!("expected answer, got {response:?}");
            };
            single_fps.push(fingerprint);
        }
        let response = call(
            &mut stream,
            &Request::Batch {
                id: 50,
                fanout: WireFanOut::All,
                queries: texts
                    .iter()
                    .enumerate()
                    .map(|(q, text)| WireQuery {
                        lang: WireLang::Cq,
                        text: (*text).into(),
                        fp_key: 10 + q as u64,
                    })
                    .collect(),
            },
        );
        match response {
            Response::BatchAnswer {
                id,
                docs,
                queue_ns,
                exec_ns,
                total_ns,
                fingerprints,
            } => {
                assert_eq!(id, 50);
                assert_eq!(docs, 2);
                assert_eq!(queue_ns + exec_ns, total_ns, "accounting must sum");
                assert_eq!(
                    fingerprints, single_fps,
                    "batched digests must equal one-at-a-time digests"
                );
            }
            other => panic!("expected batch answer, got {other:?}"),
        }
        // A parse error anywhere fails the whole batch; nothing is admitted.
        let admitted_before = handle.stats().admitted;
        let response = call(
            &mut stream,
            &Request::Batch {
                id: 51,
                fanout: WireFanOut::All,
                queries: vec![
                    WireQuery {
                        lang: WireLang::Cq,
                        text: "Q() :- A(x).".into(),
                        fp_key: 0,
                    },
                    WireQuery {
                        lang: WireLang::Cq,
                        text: "not a query".into(),
                        fp_key: 1,
                    },
                ],
            },
        );
        assert!(matches!(response, Response::Error { id: 51, .. }));
        assert_eq!(handle.stats().admitted, admitted_before);
        // An empty batch is wire-legal: it fans out and answers with zero
        // fingerprints.
        let response = call(
            &mut stream,
            &Request::Batch {
                id: 52,
                fanout: WireFanOut::All,
                queries: Vec::new(),
            },
        );
        match response {
            Response::BatchAnswer {
                id,
                docs,
                fingerprints,
                ..
            } => {
                assert_eq!(id, 52);
                assert_eq!(docs, 2);
                assert!(fingerprints.is_empty());
            }
            other => panic!("expected batch answer, got {other:?}"),
        }
        // The whole batch occupied one queue slot and one executed count.
        let stats = handle.stats();
        assert_eq!(stats.admitted, 5, "3 singles + 2 batches");
        assert_eq!(stats.executed, 5);
        assert_eq!(stats.errors, 1);
        handle.shutdown();
    }

    #[test]
    fn parse_errors_and_malformed_payloads_are_answered_not_fatal() {
        let handle = NetServer::start(test_corpus(), NetServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let response = call(
            &mut stream,
            &Request::Query {
                id: 7,
                lang: WireLang::Cq,
                text: "this is not a query".into(),
                fanout: WireFanOut::All,
                fp_key: 0,
            },
        );
        assert!(matches!(response, Response::Error { id: 7, .. }));
        // A well-framed but undecodable payload is answered with an error
        // (id 0: the payload's id cannot be trusted)...
        write_frame(&mut stream, &[0xEE, 0xEE]).unwrap();
        assert!(matches!(
            read_response(&mut stream),
            Response::Error { id: 0, .. }
        ));
        // ...and the connection still works afterwards.
        assert_eq!(
            call(&mut stream, &Request::Ping { id: 8 }),
            Response::Pong { id: 8 }
        );
        handle.shutdown();
    }

    #[test]
    fn oversized_frames_close_the_connection() {
        let config = NetServerConfig {
            max_frame_len: 64,
            ..NetServerConfig::default()
        };
        let handle = NetServer::start(test_corpus(), config).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Declare a 65-byte payload against a 64-byte cap: desynchronized
        // framing, the server closes.
        stream.write_all(&65u32.to_be_bytes()).unwrap();
        stream.flush().unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(
            stream.read(&mut buf).unwrap(),
            0,
            "server closed the stream"
        );
        handle.shutdown();
    }
}
