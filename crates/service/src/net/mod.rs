//! Network serving front end: a std-only TCP server over the sharded
//! [`crate::shard::Corpus`], with bounded admission and explicit
//! load-shedding.
//!
//! Three layers, one module each:
//!
//! * [`frame`] — length-prefixed framing (4-byte big-endian length +
//!   payload) with an incremental decoder that tolerates arbitrary TCP
//!   segmentation and rejects oversized frames before buffering them;
//! * [`protocol`] — the tagged binary request/response messages inside the
//!   frames (hand-rolled: the vendored serde shim is derive-only and has no
//!   serializer);
//! * [`queue`] + [`server`] — the bounded admission queue and the
//!   accept/reader/worker thread structure, with per-request latency split
//!   into queue-wait vs. execute time (`queue_ns + exec_ns == total_ns`,
//!   exactly).
//!
//! The backpressure contract: every request gets exactly one response.
//! Requests arriving while the admission queue is full get an immediate
//! [`protocol::Response::Shed`] carrying the observed depth and capacity —
//! never a silent drop, never a blocked connection — and shedding never
//! affects the answers of requests already admitted. The `experiments net`
//! harness in `crates/bench` drives this server open-loop over real sockets
//! and cross-checks its answer fingerprints against the in-process
//! [`crate::runner::ServiceRunner::run_corpus`] path.

pub mod frame;
pub mod protocol;
pub mod queue;
pub mod server;

pub use frame::{FrameBuffer, FrameError, DEFAULT_MAX_FRAME_LEN, FRAME_HEADER_LEN};
pub use protocol::{Request, Response, WireError, WireFanOut, WireLang, WirePosition, WireQuery};
pub use queue::{BoundedQueue, PushError};
pub use server::{NetServer, NetServerConfig, ServerHandle, ServerStats};
