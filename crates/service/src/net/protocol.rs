//! The request/response protocol spoken inside [`crate::net::frame`]s.
//!
//! Messages are encoded in a small tagged binary format (the vendored serde
//! shim is derive-only — it has no serializer — so encoding is hand-rolled,
//! like every JSON renderer in this workspace, but binary: no escaping
//! rules, fully round-trippable for arbitrary strings):
//!
//! * integers are little-endian (`u8` tags, `u32`/`u64` fields);
//! * strings are a `u32` byte length followed by that many UTF-8 bytes;
//! * every message starts with a one-byte kind tag.
//!
//! Decoding never panics: every malformed input (unknown tag, truncated
//! field, trailing bytes, invalid UTF-8) is a [`WireError`], and string
//! lengths are validated against the remaining payload before any
//! allocation, so a corrupt length cannot cause an oversized reservation.
//!
//! The request/response kinds and their fields are documented in
//! `docs/ARCHITECTURE.md` ("Network serving front end"); the invariants the
//! server maintains over them (SHED only at capacity, queue + exec = total)
//! are enforced by `experiments net` and the overload tests.

use std::fmt;

/// The fan-out target of a query request, mirroring
/// [`crate::shard::FanOut`] in wire-friendly form (owned strings, no
/// corpus types).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireFanOut {
    /// Every document in the corpus.
    All,
    /// The single named document.
    Doc(String),
    /// Every document carrying the tag.
    Tag(String),
}

impl WireFanOut {
    /// Converts the wire form into the corpus [`crate::shard::FanOut`].
    pub fn into_fanout(self) -> crate::shard::FanOut {
        match self {
            WireFanOut::All => crate::shard::FanOut::All,
            WireFanOut::Doc(name) => crate::shard::FanOut::One(name.into()),
            WireFanOut::Tag(tag) => crate::shard::FanOut::Tagged(tag),
        }
    }
}

/// The query language of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireLang {
    /// Datalog-syntax conjunctive query.
    Cq,
    /// Positive Core XPath.
    XPath,
}

/// One query of a [`Request::Batch`]: language, text, and the client's
/// fingerprint key for this query's per-document answer digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireQuery {
    /// Query language of `text`.
    pub lang: WireLang,
    /// Query text.
    pub text: String,
    /// Fingerprint key, folded per document exactly like
    /// [`Request::Query::fp_key`].
    pub fp_key: u64,
}

/// A follower's replay position for one document: the epoch it has
/// applied up to and the structure digest its tree had at that epoch.
///
/// Sent with [`Request::Replicate`] so the leader can stream only the
/// records the follower is missing, and checked by
/// `replication::ReplicaFollower::promote` against the dead leader's
/// durable prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WirePosition {
    /// Document id, exactly as the corpus knows it.
    pub doc_id: String,
    /// Epoch the sender has applied up to (inclusive).
    pub epoch: u64,
    /// `structure_digest` of the sender's tree at `epoch`.
    pub digest: u64,
}

/// A client → server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Evaluate a query against the corpus.
    Query {
        /// Client-chosen request id, echoed on the response (responses may
        /// be pipelined and can return out of order).
        id: u64,
        /// Query language of `text`.
        lang: WireLang,
        /// Query text.
        text: String,
        /// Documents to fan out to.
        fanout: WireFanOut,
        /// Client-chosen fingerprint key mixed into the answer digest: the
        /// per-document answers are folded as
        /// `answer_fingerprint(fp_key * 1_000_003 + doc_position, answer)`,
        /// exactly the keying `ServiceRunner::run_corpus` uses with its
        /// request index — so a client that keys by request kind can compare
        /// the server's digests against an in-process `run_corpus` run.
        fp_key: u64,
    },
    /// Evaluate a batch of queries against one fan-out in one unit: one
    /// frame in, one frame out, one snapshot per document serving every
    /// query of the batch. Admission is all-or-nothing (one queue slot per
    /// batch), and the response carries one fingerprint per query, in
    /// request order.
    Batch {
        /// Client-chosen request id, echoed on the response.
        id: u64,
        /// Documents the whole batch fans out to.
        fanout: WireFanOut,
        /// The queries of the batch, in answer order.
        queries: Vec<WireQuery>,
    },
    /// Subscribe this connection to a replication stream. The leader
    /// answers with a sequence of [`Response::ReplSnapshot`] and
    /// [`Response::ReplRecord`] frames (one per snapshot or write-ahead-log
    /// record the follower is missing, in sorted document order)
    /// terminated by one [`Response::ReplDone`] — all carrying the echoed
    /// id. Replication is answered inline by the connection's reader
    /// (never queued, never shed), so it belongs on a dedicated
    /// connection: queries sent on the same socket wait behind the
    /// stream.
    Replicate {
        /// Echoed id, carried on every frame of the stream.
        id: u64,
        /// The follower's per-document positions. Documents the leader
        /// has that are absent here — or whose digest does not match the
        /// leader's log at that epoch — are sent from a snapshot instead
        /// of incrementally.
        positions: Vec<WirePosition>,
    },
    /// Liveness probe, answered immediately (never queued).
    Ping {
        /// Echoed id.
        id: u64,
    },
    /// Server counters, answered immediately (never queued).
    Stats {
        /// Echoed id.
        id: u64,
    },
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The answer to an admitted, executed query.
    Answer {
        /// Id of the request this answers.
        id: u64,
        /// Order-independent digest of the per-document answers (see
        /// [`Request::Query::fp_key`]).
        fingerprint: u64,
        /// Documents the query fanned out to.
        docs: u32,
        /// Time spent waiting in the admission queue.
        queue_ns: u64,
        /// Time spent executing (snapshot + plan + evaluation, all
        /// documents).
        exec_ns: u64,
        /// Total server-side latency. Invariant: `queue_ns + exec_ns ==
        /// total_ns`, checked end-to-end by the load generator — queueing
        /// time and execution time account for every server-side
        /// nanosecond.
        total_ns: u64,
    },
    /// The answers to an admitted, executed [`Request::Batch`].
    BatchAnswer {
        /// Id of the batch this answers.
        id: u64,
        /// Documents the batch fanned out to.
        docs: u32,
        /// Time the batch spent waiting in the admission queue.
        queue_ns: u64,
        /// Time spent executing (snapshot + plans + evaluation, all queries
        /// on all documents).
        exec_ns: u64,
        /// Total server-side latency; `queue_ns + exec_ns == total_ns`
        /// holds exactly as for [`Response::Answer`].
        total_ns: u64,
        /// One per-document-folded digest per query of the batch, in
        /// request order, each keyed by its query's
        /// [`WireQuery::fp_key`].
        fingerprints: Vec<u64>,
    },
    /// The request was **shed**: the admission queue was full when it
    /// arrived. Shedding is always explicit — the server never silently
    /// drops an admitted or unadmitted request — and never affects
    /// requests admitted before it.
    Shed {
        /// Id of the shed request.
        id: u64,
        /// Queue depth observed at rejection (≥ `capacity` by the
        /// admission invariant).
        queue_depth: u32,
        /// The configured admission-queue capacity.
        capacity: u32,
    },
    /// The request was malformed (parse error, unknown document, …).
    Error {
        /// Id of the failed request.
        id: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Answer to [`Request::Ping`].
    Pong {
        /// Echoed id.
        id: u64,
    },
    /// One frame of a replication stream: a full document snapshot. Sent
    /// when the follower has no position for the document, its position
    /// is behind the leader's log truncation horizon, or its digest
    /// diverges from the leader's chain — the follower replaces any tree
    /// it holds with this one and resumes incrementally from `epoch`.
    ReplSnapshot {
        /// Id of the [`Request::Replicate`] this belongs to.
        id: u64,
        /// Document id.
        doc_id: String,
        /// The document's tags, in sorted order.
        tags: Vec<String>,
        /// Epoch the snapshot was taken at.
        epoch: u64,
        /// `structure_digest` of the snapshot tree; the follower verifies
        /// the decoded tree against it before installing.
        digest: u64,
        /// The tree in the durability codec's encoding
        /// (`codec::encode_tree` bytes).
        tree: Vec<u8>,
    },
    /// One frame of a replication stream: a single write-ahead-log record
    /// in its **on-disk framing** (`u32` body length, body of epoch +
    /// pre/post digests + edit script, `u64` checksum) — byte-identical to
    /// what the leader's log holds, so the follower re-verifies the same
    /// checksum and digest chain the crash-recovery path does.
    ReplRecord {
        /// Id of the [`Request::Replicate`] this belongs to.
        id: u64,
        /// Document the record applies to.
        doc_id: String,
        /// The record frame, exactly as stored in the leader's log.
        frame: Vec<u8>,
    },
    /// The terminal frame of a replication stream: totals for the stream
    /// and the documents the leader no longer has.
    ReplDone {
        /// Id of the [`Request::Replicate`] this belongs to.
        id: u64,
        /// Documents the stream covered (snapshot, records, or already
        /// caught up).
        documents: u32,
        /// Log records streamed.
        records: u64,
        /// Snapshots streamed.
        snapshots: u32,
        /// Documents in the request's positions that the leader has
        /// removed; the follower drops them.
        removed: Vec<String>,
    },
    /// Answer to [`Request::Stats`]: the server's cumulative counters.
    ///
    /// Encoded under the **versioned** stats tag (`RESP_STATS_V4 = 12`),
    /// which appends the replication counters (requests, records and
    /// snapshots streamed, observed lag) to the v3 layout of durability
    /// counters. The decoder still accepts every older tag
    /// (`RESP_STATS = 5`, `RESP_STATS_V2 = 6`, `RESP_STATS_V3 = 7`) —
    /// their messages decode with the counters they predate zero-filled —
    /// while an old client receiving a v4 message fails cleanly with
    /// [`WireError::UnknownTag`] rather than misparsing the longer payload.
    Stats {
        /// Echoed id.
        id: u64,
        /// Queries admitted to the queue since start.
        admitted: u64,
        /// Admitted queries fully executed and answered.
        executed: u64,
        /// Queries shed at admission.
        shed: u64,
        /// Malformed requests answered with [`Response::Error`].
        errors: u64,
        /// Current queue depth.
        queue_depth: u32,
        /// Configured queue capacity.
        capacity: u32,
        /// Plan-cache hits (v2).
        plan_hits: u64,
        /// Plan-cache misses / compilations (v2).
        plan_misses: u64,
        /// Signature analyses performed by compilations (v2).
        plan_analyses: u64,
        /// Cache hits served to a different document than the compiling one
        /// (v2).
        plan_cross_document_hits: u64,
        /// Scatter candidates considered by the pruning layer (v2).
        prune_candidates: u64,
        /// Candidates pruned without executing (v2).
        prune_pruned: u64,
        /// Candidates that survived and executed (v2).
        prune_survivors: u64,
        /// Survivors whose answer was empty anyway (v2).
        prune_false_positives: u64,
        /// Records currently in the write-ahead logs (v3; 0 on an
        /// in-memory corpus).
        wal_records: u64,
        /// Bytes currently in the write-ahead logs (v3).
        wal_bytes: u64,
        /// Newest snapshot epoch across documents (v3).
        snapshot_epoch: u64,
        /// Replication streams served since start (v4).
        repl_requests: u64,
        /// Log records streamed to followers since start (v4).
        repl_records: u64,
        /// Snapshots streamed to followers since start (v4).
        repl_snapshots: u64,
        /// Follower lag (epochs behind the leader's tips, summed over
        /// documents) observed at the start of the most recent
        /// replication stream (v4).
        repl_lag_epochs: u64,
    },
}

/// Why a payload could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The message's kind tag is not one this version speaks.
    UnknownTag(u8),
    /// The payload ended before the message's fields did.
    Truncated,
    /// Bytes remained after the message's last field.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A field had a domain-invalid value (e.g. an unknown enum byte).
    BadValue(&'static str),
    /// An **encode-side** error: the message is too large to frame. The
    /// frame header is a `u32` length, so a payload longer than
    /// `u32::MAX` bytes cannot be emitted — truncating the length (the
    /// pre-fix behaviour of `payload.len() as u32`) would desynchronize
    /// the peer's framing on a corrupt prefix instead.
    Oversized {
        /// Actual payload length.
        len: u64,
        /// The largest encodable payload length.
        max: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            WireError::Truncated => write!(f, "payload truncated mid-message"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadValue(what) => write!(f, "invalid value for {what}"),
            WireError::Oversized { len, max } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the framable maximum {max}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---- encoding primitives ----

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// A cursor over a payload being decoded.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, WireError> {
        // The length is validated against the remaining payload by `take`
        // before any allocation happens.
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        // As for strings: the declared length is validated by `take`
        // before the allocation.
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.bytes.len() - self.pos;
        if left != 0 {
            return Err(WireError::TrailingBytes(left));
        }
        Ok(())
    }
}

// ---- message tags ----

const REQ_QUERY: u8 = 1;
const REQ_PING: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_BATCH: u8 = 4;
const REQ_REPLICATE: u8 = 5;

const RESP_ANSWER: u8 = 1;
const RESP_SHED: u8 = 2;
const RESP_ERROR: u8 = 3;
const RESP_PONG: u8 = 4;
/// Legacy stats layout (decode-only): counters end at `capacity`.
const RESP_STATS: u8 = 5;
/// v2 stats layout (decode-only): legacy fields plus plan-cache and
/// prune counters.
const RESP_STATS_V2: u8 = 6;
/// v3 stats layout (decode-only): v2 fields plus durability counters.
const RESP_STATS_V3: u8 = 7;
const RESP_BATCH: u8 = 8;
const RESP_REPL_SNAPSHOT: u8 = 9;
const RESP_REPL_RECORD: u8 = 10;
const RESP_REPL_DONE: u8 = 11;
/// v4 stats layout: v3 fields plus replication counters. Always used
/// for encoding.
const RESP_STATS_V4: u8 = 12;

const LANG_CQ: u8 = 0;
const LANG_XPATH: u8 = 1;

const FANOUT_ALL: u8 = 0;
const FANOUT_DOC: u8 = 1;
const FANOUT_TAG: u8 = 2;

fn put_lang(out: &mut Vec<u8>, lang: WireLang) {
    out.push(match lang {
        WireLang::Cq => LANG_CQ,
        WireLang::XPath => LANG_XPATH,
    });
}

fn put_fanout(out: &mut Vec<u8>, fanout: &WireFanOut) {
    match fanout {
        WireFanOut::All => {
            out.push(FANOUT_ALL);
            put_str(out, "");
        }
        WireFanOut::Doc(name) => {
            out.push(FANOUT_DOC);
            put_str(out, name);
        }
        WireFanOut::Tag(tag) => {
            out.push(FANOUT_TAG);
            put_str(out, tag);
        }
    }
}

fn read_lang(r: &mut Reader<'_>) -> Result<WireLang, WireError> {
    match r.u8()? {
        LANG_CQ => Ok(WireLang::Cq),
        LANG_XPATH => Ok(WireLang::XPath),
        _ => Err(WireError::BadValue("query language")),
    }
}

fn read_fanout(r: &mut Reader<'_>) -> Result<WireFanOut, WireError> {
    let tag = r.u8()?;
    let target = r.string()?;
    match tag {
        FANOUT_ALL => Ok(WireFanOut::All),
        FANOUT_DOC => Ok(WireFanOut::Doc(target)),
        FANOUT_TAG => Ok(WireFanOut::Tag(target)),
        _ => Err(WireError::BadValue("fan-out")),
    }
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query {
                id,
                lang,
                text,
                fanout,
                fp_key,
            } => {
                out.push(REQ_QUERY);
                put_u64(&mut out, *id);
                put_lang(&mut out, *lang);
                put_str(&mut out, text);
                put_fanout(&mut out, fanout);
                put_u64(&mut out, *fp_key);
            }
            Request::Batch {
                id,
                fanout,
                queries,
            } => {
                out.push(REQ_BATCH);
                put_u64(&mut out, *id);
                put_fanout(&mut out, fanout);
                put_u32(&mut out, queries.len() as u32);
                for query in queries {
                    put_lang(&mut out, query.lang);
                    put_str(&mut out, &query.text);
                    put_u64(&mut out, query.fp_key);
                }
            }
            Request::Replicate { id, positions } => {
                out.push(REQ_REPLICATE);
                put_u64(&mut out, *id);
                put_u32(&mut out, positions.len() as u32);
                for position in positions {
                    put_str(&mut out, &position.doc_id);
                    put_u64(&mut out, position.epoch);
                    put_u64(&mut out, position.digest);
                }
            }
            Request::Ping { id } => {
                out.push(REQ_PING);
                put_u64(&mut out, *id);
            }
            Request::Stats { id } => {
                out.push(REQ_STATS);
                put_u64(&mut out, *id);
            }
        }
        out
    }

    /// Decodes a frame payload as a request.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let request = match r.u8()? {
            REQ_QUERY => {
                let id = r.u64()?;
                let lang = read_lang(&mut r)?;
                let text = r.string()?;
                let fanout = read_fanout(&mut r)?;
                let fp_key = r.u64()?;
                Request::Query {
                    id,
                    lang,
                    text,
                    fanout,
                    fp_key,
                }
            }
            REQ_BATCH => {
                let id = r.u64()?;
                let fanout = read_fanout(&mut r)?;
                let count = r.u32()? as usize;
                // Never pre-reserve the declared count: a corrupt header
                // must not cause an oversized allocation. A lying count
                // runs out of payload and fails as Truncated.
                let mut queries = Vec::new();
                for _ in 0..count {
                    let lang = read_lang(&mut r)?;
                    let text = r.string()?;
                    let fp_key = r.u64()?;
                    queries.push(WireQuery { lang, text, fp_key });
                }
                Request::Batch {
                    id,
                    fanout,
                    queries,
                }
            }
            REQ_REPLICATE => {
                let id = r.u64()?;
                let count = r.u32()? as usize;
                // As for batches: no reservation from the declared count.
                let mut positions = Vec::new();
                for _ in 0..count {
                    let doc_id = r.string()?;
                    let epoch = r.u64()?;
                    let digest = r.u64()?;
                    positions.push(WirePosition {
                        doc_id,
                        epoch,
                        digest,
                    });
                }
                Request::Replicate { id, positions }
            }
            REQ_PING => Request::Ping { id: r.u64()? },
            REQ_STATS => Request::Stats { id: r.u64()? },
            other => return Err(WireError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(request)
    }

    /// The request id (every request kind carries one).
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. }
            | Request::Batch { id, .. }
            | Request::Replicate { id, .. }
            | Request::Ping { id }
            | Request::Stats { id } => *id,
        }
    }
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Answer {
                id,
                fingerprint,
                docs,
                queue_ns,
                exec_ns,
                total_ns,
            } => {
                out.push(RESP_ANSWER);
                put_u64(&mut out, *id);
                put_u64(&mut out, *fingerprint);
                put_u32(&mut out, *docs);
                put_u64(&mut out, *queue_ns);
                put_u64(&mut out, *exec_ns);
                put_u64(&mut out, *total_ns);
            }
            Response::BatchAnswer {
                id,
                docs,
                queue_ns,
                exec_ns,
                total_ns,
                fingerprints,
            } => {
                out.push(RESP_BATCH);
                put_u64(&mut out, *id);
                put_u32(&mut out, *docs);
                put_u64(&mut out, *queue_ns);
                put_u64(&mut out, *exec_ns);
                put_u64(&mut out, *total_ns);
                put_u32(&mut out, fingerprints.len() as u32);
                for fingerprint in fingerprints {
                    put_u64(&mut out, *fingerprint);
                }
            }
            Response::Shed {
                id,
                queue_depth,
                capacity,
            } => {
                out.push(RESP_SHED);
                put_u64(&mut out, *id);
                put_u32(&mut out, *queue_depth);
                put_u32(&mut out, *capacity);
            }
            Response::Error { id, message } => {
                out.push(RESP_ERROR);
                put_u64(&mut out, *id);
                put_str(&mut out, message);
            }
            Response::Pong { id } => {
                out.push(RESP_PONG);
                put_u64(&mut out, *id);
            }
            Response::ReplSnapshot {
                id,
                doc_id,
                tags,
                epoch,
                digest,
                tree,
            } => {
                out.push(RESP_REPL_SNAPSHOT);
                put_u64(&mut out, *id);
                put_str(&mut out, doc_id);
                put_u32(&mut out, tags.len() as u32);
                for tag in tags {
                    put_str(&mut out, tag);
                }
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *digest);
                put_bytes(&mut out, tree);
            }
            Response::ReplRecord { id, doc_id, frame } => {
                out.push(RESP_REPL_RECORD);
                put_u64(&mut out, *id);
                put_str(&mut out, doc_id);
                put_bytes(&mut out, frame);
            }
            Response::ReplDone {
                id,
                documents,
                records,
                snapshots,
                removed,
            } => {
                out.push(RESP_REPL_DONE);
                put_u64(&mut out, *id);
                put_u32(&mut out, *documents);
                put_u64(&mut out, *records);
                put_u32(&mut out, *snapshots);
                put_u32(&mut out, removed.len() as u32);
                for doc_id in removed {
                    put_str(&mut out, doc_id);
                }
            }
            Response::Stats {
                id,
                admitted,
                executed,
                shed,
                errors,
                queue_depth,
                capacity,
                plan_hits,
                plan_misses,
                plan_analyses,
                plan_cross_document_hits,
                prune_candidates,
                prune_pruned,
                prune_survivors,
                prune_false_positives,
                wal_records,
                wal_bytes,
                snapshot_epoch,
                repl_requests,
                repl_records,
                repl_snapshots,
                repl_lag_epochs,
            } => {
                out.push(RESP_STATS_V4);
                put_u64(&mut out, *id);
                put_u64(&mut out, *admitted);
                put_u64(&mut out, *executed);
                put_u64(&mut out, *shed);
                put_u64(&mut out, *errors);
                put_u32(&mut out, *queue_depth);
                put_u32(&mut out, *capacity);
                put_u64(&mut out, *plan_hits);
                put_u64(&mut out, *plan_misses);
                put_u64(&mut out, *plan_analyses);
                put_u64(&mut out, *plan_cross_document_hits);
                put_u64(&mut out, *prune_candidates);
                put_u64(&mut out, *prune_pruned);
                put_u64(&mut out, *prune_survivors);
                put_u64(&mut out, *prune_false_positives);
                put_u64(&mut out, *wal_records);
                put_u64(&mut out, *wal_bytes);
                put_u64(&mut out, *snapshot_epoch);
                put_u64(&mut out, *repl_requests);
                put_u64(&mut out, *repl_records);
                put_u64(&mut out, *repl_snapshots);
                put_u64(&mut out, *repl_lag_epochs);
            }
        }
        out
    }

    /// Decodes a frame payload as a response.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let response = match r.u8()? {
            RESP_ANSWER => Response::Answer {
                id: r.u64()?,
                fingerprint: r.u64()?,
                docs: r.u32()?,
                queue_ns: r.u64()?,
                exec_ns: r.u64()?,
                total_ns: r.u64()?,
            },
            RESP_BATCH => {
                let id = r.u64()?;
                let docs = r.u32()?;
                let queue_ns = r.u64()?;
                let exec_ns = r.u64()?;
                let total_ns = r.u64()?;
                let count = r.u32()? as usize;
                // As with batch requests: no reservation from the declared
                // count — push until the count is met or the payload ends.
                let mut fingerprints = Vec::new();
                for _ in 0..count {
                    fingerprints.push(r.u64()?);
                }
                Response::BatchAnswer {
                    id,
                    docs,
                    queue_ns,
                    exec_ns,
                    total_ns,
                    fingerprints,
                }
            }
            RESP_SHED => Response::Shed {
                id: r.u64()?,
                queue_depth: r.u32()?,
                capacity: r.u32()?,
            },
            RESP_ERROR => Response::Error {
                id: r.u64()?,
                message: r.string()?,
            },
            RESP_PONG => Response::Pong { id: r.u64()? },
            RESP_REPL_SNAPSHOT => {
                let id = r.u64()?;
                let doc_id = r.string()?;
                let count = r.u32()? as usize;
                // No reservation from the declared tag count.
                let mut tags = Vec::new();
                for _ in 0..count {
                    tags.push(r.string()?);
                }
                let epoch = r.u64()?;
                let digest = r.u64()?;
                let tree = r.bytes()?;
                Response::ReplSnapshot {
                    id,
                    doc_id,
                    tags,
                    epoch,
                    digest,
                    tree,
                }
            }
            RESP_REPL_RECORD => Response::ReplRecord {
                id: r.u64()?,
                doc_id: r.string()?,
                frame: r.bytes()?,
            },
            RESP_REPL_DONE => {
                let id = r.u64()?;
                let documents = r.u32()?;
                let records = r.u64()?;
                let snapshots = r.u32()?;
                let count = r.u32()? as usize;
                let mut removed = Vec::new();
                for _ in 0..count {
                    removed.push(r.string()?);
                }
                Response::ReplDone {
                    id,
                    documents,
                    records,
                    snapshots,
                    removed,
                }
            }
            // Legacy stats: a pre-pruning server's layout. The counters it
            // does not know about decode as zero.
            RESP_STATS => Response::Stats {
                id: r.u64()?,
                admitted: r.u64()?,
                executed: r.u64()?,
                shed: r.u64()?,
                errors: r.u64()?,
                queue_depth: r.u32()?,
                capacity: r.u32()?,
                plan_hits: 0,
                plan_misses: 0,
                plan_analyses: 0,
                plan_cross_document_hits: 0,
                prune_candidates: 0,
                prune_pruned: 0,
                prune_survivors: 0,
                prune_false_positives: 0,
                wal_records: 0,
                wal_bytes: 0,
                snapshot_epoch: 0,
                repl_requests: 0,
                repl_records: 0,
                repl_snapshots: 0,
                repl_lag_epochs: 0,
            },
            // v2 stats: a pre-durability server's layout; the durability
            // counters decode as zero.
            RESP_STATS_V2 => Response::Stats {
                id: r.u64()?,
                admitted: r.u64()?,
                executed: r.u64()?,
                shed: r.u64()?,
                errors: r.u64()?,
                queue_depth: r.u32()?,
                capacity: r.u32()?,
                plan_hits: r.u64()?,
                plan_misses: r.u64()?,
                plan_analyses: r.u64()?,
                plan_cross_document_hits: r.u64()?,
                prune_candidates: r.u64()?,
                prune_pruned: r.u64()?,
                prune_survivors: r.u64()?,
                prune_false_positives: r.u64()?,
                wal_records: 0,
                wal_bytes: 0,
                snapshot_epoch: 0,
                repl_requests: 0,
                repl_records: 0,
                repl_snapshots: 0,
                repl_lag_epochs: 0,
            },
            // v3 stats: a pre-replication server's layout; the replication
            // counters decode as zero.
            RESP_STATS_V3 => Response::Stats {
                id: r.u64()?,
                admitted: r.u64()?,
                executed: r.u64()?,
                shed: r.u64()?,
                errors: r.u64()?,
                queue_depth: r.u32()?,
                capacity: r.u32()?,
                plan_hits: r.u64()?,
                plan_misses: r.u64()?,
                plan_analyses: r.u64()?,
                plan_cross_document_hits: r.u64()?,
                prune_candidates: r.u64()?,
                prune_pruned: r.u64()?,
                prune_survivors: r.u64()?,
                prune_false_positives: r.u64()?,
                wal_records: r.u64()?,
                wal_bytes: r.u64()?,
                snapshot_epoch: r.u64()?,
                repl_requests: 0,
                repl_records: 0,
                repl_snapshots: 0,
                repl_lag_epochs: 0,
            },
            RESP_STATS_V4 => Response::Stats {
                id: r.u64()?,
                admitted: r.u64()?,
                executed: r.u64()?,
                shed: r.u64()?,
                errors: r.u64()?,
                queue_depth: r.u32()?,
                capacity: r.u32()?,
                plan_hits: r.u64()?,
                plan_misses: r.u64()?,
                plan_analyses: r.u64()?,
                plan_cross_document_hits: r.u64()?,
                prune_candidates: r.u64()?,
                prune_pruned: r.u64()?,
                prune_survivors: r.u64()?,
                prune_false_positives: r.u64()?,
                wal_records: r.u64()?,
                wal_bytes: r.u64()?,
                snapshot_epoch: r.u64()?,
                repl_requests: r.u64()?,
                repl_records: r.u64()?,
                repl_snapshots: r.u64()?,
                repl_lag_epochs: r.u64()?,
            },
            other => return Err(WireError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(response)
    }

    /// The id of the request this response belongs to.
    pub fn id(&self) -> u64 {
        match self {
            Response::Answer { id, .. }
            | Response::BatchAnswer { id, .. }
            | Response::Shed { id, .. }
            | Response::Error { id, .. }
            | Response::Pong { id }
            | Response::ReplSnapshot { id, .. }
            | Response::ReplRecord { id, .. }
            | Response::ReplDone { id, .. }
            | Response::Stats { id, .. } => *id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let requests = [
            Request::Query {
                id: 7,
                lang: WireLang::Cq,
                text: "Q(y) :- A(x), Child+(x, y), B(y).".into(),
                fanout: WireFanOut::All,
                fp_key: 3,
            },
            Request::Query {
                id: u64::MAX,
                lang: WireLang::XPath,
                text: "//A[B]/following::C".into(),
                fanout: WireFanOut::Doc("doc-0001".into()),
                fp_key: 0,
            },
            Request::Query {
                id: 0,
                lang: WireLang::Cq,
                text: String::new(),
                fanout: WireFanOut::Tag("hot".into()),
                fp_key: u64::MAX,
            },
            Request::Ping { id: 1 },
            Request::Stats { id: 2 },
            Request::Batch {
                id: 21,
                fanout: WireFanOut::Tag("hot".into()),
                queries: vec![
                    WireQuery {
                        lang: WireLang::Cq,
                        text: "Q(y) :- A(x), Child(x, y), B(y).".into(),
                        fp_key: 5,
                    },
                    WireQuery {
                        lang: WireLang::XPath,
                        text: "//A[B]".into(),
                        fp_key: u64::MAX,
                    },
                ],
            },
            // An empty batch is wire-legal (the server answers it with an
            // empty fingerprint list).
            Request::Batch {
                id: 22,
                fanout: WireFanOut::All,
                queries: Vec::new(),
            },
            Request::Replicate {
                id: 23,
                positions: vec![
                    WirePosition {
                        doc_id: "doc-0001".into(),
                        epoch: 12,
                        digest: u64::MAX,
                    },
                    WirePosition {
                        doc_id: String::new(),
                        epoch: 0,
                        digest: 0,
                    },
                ],
            },
            // A cold follower subscribes with no positions at all.
            Request::Replicate {
                id: 24,
                positions: Vec::new(),
            },
        ];
        for request in requests {
            let wire = request.encode();
            assert_eq!(Request::decode(&wire), Ok(request));
        }
    }

    #[test]
    fn batch_roundtrips_and_rejects_malformed() {
        let response = Response::BatchAnswer {
            id: 30,
            docs: 12,
            queue_ns: 100,
            exec_ns: 900,
            total_ns: 1_000,
            fingerprints: vec![1, u64::MAX, 0, 42],
        };
        let wire = response.encode();
        assert_eq!(Response::decode(&wire), Ok(response));
        // A declared query count larger than the payload holds is
        // Truncated — and must not have provoked a count-sized allocation.
        let mut wire = Vec::new();
        wire.push(4); // REQ_BATCH
        wire.extend_from_slice(&9u64.to_le_bytes());
        wire.push(0); // FANOUT_ALL
        wire.extend_from_slice(&0u32.to_le_bytes()); // empty target string
        wire.extend_from_slice(&u32::MAX.to_le_bytes()); // lying count
        assert_eq!(Request::decode(&wire), Err(WireError::Truncated));
        // Same on the response side: a lying fingerprint count truncates.
        let mut wire = Vec::new();
        wire.push(8); // RESP_BATCH
        wire.extend_from_slice(&9u64.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        for v in [0u64, 0, 0] {
            wire.extend_from_slice(&v.to_le_bytes());
        }
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&7u64.to_le_bytes()); // only one of 2^32-1
        assert_eq!(Response::decode(&wire), Err(WireError::Truncated));
        // A bad language byte inside the batch is a BadValue, as for
        // single-query requests.
        let mut wire = Vec::new();
        wire.push(4);
        wire.extend_from_slice(&9u64.to_le_bytes());
        wire.push(0);
        wire.extend_from_slice(&0u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(9); // bad language
        assert_eq!(
            Request::decode(&wire),
            Err(WireError::BadValue("query language"))
        );
        // Trailing bytes after the last fingerprint are rejected.
        let mut wire = Response::BatchAnswer {
            id: 1,
            docs: 0,
            queue_ns: 0,
            exec_ns: 0,
            total_ns: 0,
            fingerprints: vec![3],
        }
        .encode();
        wire.push(0);
        assert_eq!(Response::decode(&wire), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn response_roundtrips() {
        let responses = [
            Response::Answer {
                id: 9,
                fingerprint: 0xdead_beef,
                docs: 64,
                queue_ns: 1_000,
                exec_ns: 2_000,
                total_ns: 3_000,
            },
            Response::Shed {
                id: 10,
                queue_depth: 65,
                capacity: 64,
            },
            Response::Error {
                id: 11,
                message: "parse error: unexpected token".into(),
            },
            Response::Pong { id: 12 },
            Response::Stats {
                id: 13,
                admitted: 100,
                executed: 99,
                shed: 5,
                errors: 1,
                queue_depth: 1,
                capacity: 64,
                plan_hits: 90,
                plan_misses: 9,
                plan_analyses: 12,
                plan_cross_document_hits: 33,
                prune_candidates: 640,
                prune_pruned: 500,
                prune_survivors: 140,
                prune_false_positives: 7,
                wal_records: 12,
                wal_bytes: 4096,
                snapshot_epoch: 32,
                repl_requests: 3,
                repl_records: 40,
                repl_snapshots: 2,
                repl_lag_epochs: 5,
            },
            Response::ReplSnapshot {
                id: 14,
                doc_id: "doc-0002".into(),
                tags: vec!["hot".into(), "tenant-a".into()],
                epoch: 16,
                digest: 0xfeed_f00d,
                tree: vec![0, 1, 2, 0xff, 0xfe],
            },
            Response::ReplSnapshot {
                id: 15,
                doc_id: String::new(),
                tags: Vec::new(),
                epoch: 0,
                digest: 0,
                tree: Vec::new(),
            },
            Response::ReplRecord {
                id: 16,
                doc_id: "doc-0002".into(),
                frame: vec![12, 0, 0, 0, 0xab],
            },
            Response::ReplDone {
                id: 17,
                documents: 6,
                records: 40,
                snapshots: 2,
                removed: vec!["doc-0009".into()],
            },
            Response::ReplDone {
                id: 18,
                documents: 0,
                records: 0,
                snapshots: 0,
                removed: Vec::new(),
            },
        ];
        for response in responses {
            let wire = response.encode();
            assert_eq!(Response::decode(&wire), Ok(response));
        }
    }

    #[test]
    fn stats_are_versioned_on_the_wire() {
        // Encoding always uses the newest versioned tag...
        let stats = Response::Stats {
            id: 4,
            admitted: 10,
            executed: 9,
            shed: 1,
            errors: 0,
            queue_depth: 2,
            capacity: 8,
            plan_hits: 7,
            plan_misses: 2,
            plan_analyses: 2,
            plan_cross_document_hits: 3,
            prune_candidates: 90,
            prune_pruned: 60,
            prune_survivors: 30,
            prune_false_positives: 4,
            wal_records: 3,
            wal_bytes: 777,
            snapshot_epoch: 2,
            repl_requests: 1,
            repl_records: 4,
            repl_snapshots: 1,
            repl_lag_epochs: 2,
        };
        let wire = stats.encode();
        assert_eq!(wire[0], 12, "stats encode under the versioned tag");
        // ...so an old client (which only knows tags up to 7 or 8)
        // rejects it with a clean UnknownTag error instead of misparsing
        // the longer layout. A byte-for-byte legacy frame still decodes,
        // zero-filling the counters the old server never tracked.
        let mut legacy = Vec::new();
        legacy.push(5); // RESP_STATS (legacy)
        for v in [4u64, 10, 9, 1, 0] {
            legacy.extend_from_slice(&v.to_le_bytes());
        }
        legacy.extend_from_slice(&2u32.to_le_bytes());
        legacy.extend_from_slice(&8u32.to_le_bytes());
        match Response::decode(&legacy).unwrap() {
            Response::Stats {
                id,
                admitted,
                plan_hits,
                prune_candidates,
                wal_records,
                ..
            } => {
                assert_eq!((id, admitted), (4, 10));
                assert_eq!((plan_hits, prune_candidates, wal_records), (0, 0, 0));
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // A v2 frame (pre-durability) decodes with the wal counters
        // zero-filled.
        let mut v2 = Vec::new();
        v2.push(6); // RESP_STATS_V2 (decode-only)
        for v in [4u64, 10, 9, 1, 0] {
            v2.extend_from_slice(&v.to_le_bytes());
        }
        v2.extend_from_slice(&2u32.to_le_bytes());
        v2.extend_from_slice(&8u32.to_le_bytes());
        for v in [7u64, 2, 2, 3, 90, 60, 30, 4] {
            v2.extend_from_slice(&v.to_le_bytes());
        }
        match Response::decode(&v2).unwrap() {
            Response::Stats {
                plan_hits,
                wal_records,
                wal_bytes,
                snapshot_epoch,
                ..
            } => {
                assert_eq!(plan_hits, 7);
                assert_eq!((wal_records, wal_bytes, snapshot_epoch), (0, 0, 0));
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // A v3 frame (pre-replication) decodes with the replication
        // counters zero-filled.
        let mut v3 = Vec::new();
        v3.push(7); // RESP_STATS_V3 (decode-only)
        for v in [4u64, 10, 9, 1, 0] {
            v3.extend_from_slice(&v.to_le_bytes());
        }
        v3.extend_from_slice(&2u32.to_le_bytes());
        v3.extend_from_slice(&8u32.to_le_bytes());
        for v in [7u64, 2, 2, 3, 90, 60, 30, 4, 3, 777, 2] {
            v3.extend_from_slice(&v.to_le_bytes());
        }
        match Response::decode(&v3).unwrap() {
            Response::Stats {
                wal_records,
                wal_bytes,
                snapshot_epoch,
                repl_requests,
                repl_records,
                repl_snapshots,
                repl_lag_epochs,
                ..
            } => {
                assert_eq!((wal_records, wal_bytes, snapshot_epoch), (3, 777, 2));
                assert_eq!(
                    (repl_requests, repl_records, repl_snapshots, repl_lag_epochs),
                    (0, 0, 0, 0)
                );
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // A legacy frame with trailing bytes from a newer layout is
        // rejected, not silently truncated.
        legacy.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(Response::decode(&legacy), Err(WireError::TrailingBytes(8)));
    }

    #[test]
    fn malformed_payloads_are_errors_not_panics() {
        assert_eq!(Request::decode(&[]), Err(WireError::Truncated));
        assert_eq!(Request::decode(&[99]), Err(WireError::UnknownTag(99)));
        assert_eq!(Response::decode(&[0]), Err(WireError::UnknownTag(0)));
        // Truncated mid-field.
        let wire = Request::Ping { id: 5 }.encode();
        assert_eq!(
            Request::decode(&wire[..wire.len() - 1]),
            Err(WireError::Truncated)
        );
        // Trailing garbage.
        let mut wire = Response::Pong { id: 5 }.encode();
        wire.push(0);
        assert_eq!(Response::decode(&wire), Err(WireError::TrailingBytes(1)));
        // A string length pointing past the payload is Truncated, and the
        // decoder must not have tried to allocate the declared length.
        let mut wire = Vec::new();
        wire.push(3); // REQ_STATS... actually RESP_ERROR for responses
        wire.extend_from_slice(&5u64.to_le_bytes());
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Response::decode(&wire), Err(WireError::Truncated));
        // Invalid UTF-8 in a string field.
        let mut wire = Vec::new();
        wire.push(3);
        wire.extend_from_slice(&5u64.to_le_bytes());
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(Response::decode(&wire), Err(WireError::BadUtf8));
        // Invalid enum bytes.
        let mut wire = Vec::new();
        wire.push(1); // REQ_QUERY
        wire.extend_from_slice(&1u64.to_le_bytes());
        wire.push(9); // bad language
        assert_eq!(
            Request::decode(&wire),
            Err(WireError::BadValue("query language"))
        );
        // A lying position count in a replicate request is Truncated —
        // and must not have provoked a count-sized allocation.
        let mut wire = Vec::new();
        wire.push(5); // REQ_REPLICATE
        wire.extend_from_slice(&9u64.to_le_bytes());
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(&wire), Err(WireError::Truncated));
        // A snapshot frame whose declared tree length overruns the payload
        // is Truncated, not an oversized allocation.
        let mut wire = Vec::new();
        wire.push(9); // RESP_REPL_SNAPSHOT
        wire.extend_from_slice(&9u64.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes()); // empty doc id
        wire.extend_from_slice(&0u32.to_le_bytes()); // no tags
        wire.extend_from_slice(&3u64.to_le_bytes()); // epoch
        wire.extend_from_slice(&7u64.to_le_bytes()); // digest
        wire.extend_from_slice(&u32::MAX.to_le_bytes()); // lying tree length
        assert_eq!(Response::decode(&wire), Err(WireError::Truncated));
    }
}
