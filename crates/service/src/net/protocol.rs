//! The request/response protocol spoken inside [`crate::net::frame`]s.
//!
//! Messages are encoded in a small tagged binary format (the vendored serde
//! shim is derive-only — it has no serializer — so encoding is hand-rolled,
//! like every JSON renderer in this workspace, but binary: no escaping
//! rules, fully round-trippable for arbitrary strings):
//!
//! * integers are little-endian (`u8` tags, `u32`/`u64` fields);
//! * strings are a `u32` byte length followed by that many UTF-8 bytes;
//! * every message starts with a one-byte kind tag.
//!
//! Decoding never panics: every malformed input (unknown tag, truncated
//! field, trailing bytes, invalid UTF-8) is a [`WireError`], and string
//! lengths are validated against the remaining payload before any
//! allocation, so a corrupt length cannot cause an oversized reservation.
//!
//! The request/response kinds and their fields are documented in
//! `docs/ARCHITECTURE.md` ("Network serving front end"); the invariants the
//! server maintains over them (SHED only at capacity, queue + exec = total)
//! are enforced by `experiments net` and the overload tests.

use std::fmt;

/// The fan-out target of a query request, mirroring
/// [`crate::shard::FanOut`] in wire-friendly form (owned strings, no
/// corpus types).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireFanOut {
    /// Every document in the corpus.
    All,
    /// The single named document.
    Doc(String),
    /// Every document carrying the tag.
    Tag(String),
}

impl WireFanOut {
    /// Converts the wire form into the corpus [`crate::shard::FanOut`].
    pub fn into_fanout(self) -> crate::shard::FanOut {
        match self {
            WireFanOut::All => crate::shard::FanOut::All,
            WireFanOut::Doc(name) => crate::shard::FanOut::One(name.into()),
            WireFanOut::Tag(tag) => crate::shard::FanOut::Tagged(tag),
        }
    }
}

/// The query language of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireLang {
    /// Datalog-syntax conjunctive query.
    Cq,
    /// Positive Core XPath.
    XPath,
}

/// One query of a [`Request::Batch`]: language, text, and the client's
/// fingerprint key for this query's per-document answer digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireQuery {
    /// Query language of `text`.
    pub lang: WireLang,
    /// Query text.
    pub text: String,
    /// Fingerprint key, folded per document exactly like
    /// [`Request::Query::fp_key`].
    pub fp_key: u64,
}

/// A client → server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Evaluate a query against the corpus.
    Query {
        /// Client-chosen request id, echoed on the response (responses may
        /// be pipelined and can return out of order).
        id: u64,
        /// Query language of `text`.
        lang: WireLang,
        /// Query text.
        text: String,
        /// Documents to fan out to.
        fanout: WireFanOut,
        /// Client-chosen fingerprint key mixed into the answer digest: the
        /// per-document answers are folded as
        /// `answer_fingerprint(fp_key * 1_000_003 + doc_position, answer)`,
        /// exactly the keying `ServiceRunner::run_corpus` uses with its
        /// request index — so a client that keys by request kind can compare
        /// the server's digests against an in-process `run_corpus` run.
        fp_key: u64,
    },
    /// Evaluate a batch of queries against one fan-out in one unit: one
    /// frame in, one frame out, one snapshot per document serving every
    /// query of the batch. Admission is all-or-nothing (one queue slot per
    /// batch), and the response carries one fingerprint per query, in
    /// request order.
    Batch {
        /// Client-chosen request id, echoed on the response.
        id: u64,
        /// Documents the whole batch fans out to.
        fanout: WireFanOut,
        /// The queries of the batch, in answer order.
        queries: Vec<WireQuery>,
    },
    /// Liveness probe, answered immediately (never queued).
    Ping {
        /// Echoed id.
        id: u64,
    },
    /// Server counters, answered immediately (never queued).
    Stats {
        /// Echoed id.
        id: u64,
    },
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The answer to an admitted, executed query.
    Answer {
        /// Id of the request this answers.
        id: u64,
        /// Order-independent digest of the per-document answers (see
        /// [`Request::Query::fp_key`]).
        fingerprint: u64,
        /// Documents the query fanned out to.
        docs: u32,
        /// Time spent waiting in the admission queue.
        queue_ns: u64,
        /// Time spent executing (snapshot + plan + evaluation, all
        /// documents).
        exec_ns: u64,
        /// Total server-side latency. Invariant: `queue_ns + exec_ns ==
        /// total_ns`, checked end-to-end by the load generator — queueing
        /// time and execution time account for every server-side
        /// nanosecond.
        total_ns: u64,
    },
    /// The answers to an admitted, executed [`Request::Batch`].
    BatchAnswer {
        /// Id of the batch this answers.
        id: u64,
        /// Documents the batch fanned out to.
        docs: u32,
        /// Time the batch spent waiting in the admission queue.
        queue_ns: u64,
        /// Time spent executing (snapshot + plans + evaluation, all queries
        /// on all documents).
        exec_ns: u64,
        /// Total server-side latency; `queue_ns + exec_ns == total_ns`
        /// holds exactly as for [`Response::Answer`].
        total_ns: u64,
        /// One per-document-folded digest per query of the batch, in
        /// request order, each keyed by its query's
        /// [`WireQuery::fp_key`].
        fingerprints: Vec<u64>,
    },
    /// The request was **shed**: the admission queue was full when it
    /// arrived. Shedding is always explicit — the server never silently
    /// drops an admitted or unadmitted request — and never affects
    /// requests admitted before it.
    Shed {
        /// Id of the shed request.
        id: u64,
        /// Queue depth observed at rejection (≥ `capacity` by the
        /// admission invariant).
        queue_depth: u32,
        /// The configured admission-queue capacity.
        capacity: u32,
    },
    /// The request was malformed (parse error, unknown document, …).
    Error {
        /// Id of the failed request.
        id: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Answer to [`Request::Ping`].
    Pong {
        /// Echoed id.
        id: u64,
    },
    /// Answer to [`Request::Stats`]: the server's cumulative counters.
    ///
    /// Encoded under the **versioned** stats tag (`RESP_STATS_V3 = 7`),
    /// which appends the durability counters (write-ahead log records and
    /// bytes, newest snapshot epoch) to the v2 layout of plan-cache and
    /// pruning counters. The decoder still accepts the older tags
    /// (`RESP_STATS = 5`, `RESP_STATS_V2 = 6`) — their messages decode
    /// with the counters they predate zero-filled — while an old client
    /// receiving a v3 message fails cleanly with
    /// [`WireError::UnknownTag`] rather than misparsing the longer payload.
    Stats {
        /// Echoed id.
        id: u64,
        /// Queries admitted to the queue since start.
        admitted: u64,
        /// Admitted queries fully executed and answered.
        executed: u64,
        /// Queries shed at admission.
        shed: u64,
        /// Malformed requests answered with [`Response::Error`].
        errors: u64,
        /// Current queue depth.
        queue_depth: u32,
        /// Configured queue capacity.
        capacity: u32,
        /// Plan-cache hits (v2).
        plan_hits: u64,
        /// Plan-cache misses / compilations (v2).
        plan_misses: u64,
        /// Signature analyses performed by compilations (v2).
        plan_analyses: u64,
        /// Cache hits served to a different document than the compiling one
        /// (v2).
        plan_cross_document_hits: u64,
        /// Scatter candidates considered by the pruning layer (v2).
        prune_candidates: u64,
        /// Candidates pruned without executing (v2).
        prune_pruned: u64,
        /// Candidates that survived and executed (v2).
        prune_survivors: u64,
        /// Survivors whose answer was empty anyway (v2).
        prune_false_positives: u64,
        /// Records currently in the write-ahead logs (v3; 0 on an
        /// in-memory corpus).
        wal_records: u64,
        /// Bytes currently in the write-ahead logs (v3).
        wal_bytes: u64,
        /// Newest snapshot epoch across documents (v3).
        snapshot_epoch: u64,
    },
}

/// Why a payload could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The message's kind tag is not one this version speaks.
    UnknownTag(u8),
    /// The payload ended before the message's fields did.
    Truncated,
    /// Bytes remained after the message's last field.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A field had a domain-invalid value (e.g. an unknown enum byte).
    BadValue(&'static str),
    /// An **encode-side** error: the message is too large to frame. The
    /// frame header is a `u32` length, so a payload longer than
    /// `u32::MAX` bytes cannot be emitted — truncating the length (the
    /// pre-fix behaviour of `payload.len() as u32`) would desynchronize
    /// the peer's framing on a corrupt prefix instead.
    Oversized {
        /// Actual payload length.
        len: u64,
        /// The largest encodable payload length.
        max: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            WireError::Truncated => write!(f, "payload truncated mid-message"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadValue(what) => write!(f, "invalid value for {what}"),
            WireError::Oversized { len, max } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the framable maximum {max}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---- encoding primitives ----

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over a payload being decoded.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, WireError> {
        // The length is validated against the remaining payload by `take`
        // before any allocation happens.
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.bytes.len() - self.pos;
        if left != 0 {
            return Err(WireError::TrailingBytes(left));
        }
        Ok(())
    }
}

// ---- message tags ----

const REQ_QUERY: u8 = 1;
const REQ_PING: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_BATCH: u8 = 4;

const RESP_ANSWER: u8 = 1;
const RESP_SHED: u8 = 2;
const RESP_ERROR: u8 = 3;
const RESP_PONG: u8 = 4;
/// Legacy stats layout (decode-only): counters end at `capacity`.
const RESP_STATS: u8 = 5;
/// v2 stats layout (decode-only): legacy fields plus plan-cache and
/// prune counters.
const RESP_STATS_V2: u8 = 6;
/// v3 stats layout: v2 fields plus durability counters. Always used for
/// encoding.
const RESP_STATS_V3: u8 = 7;
const RESP_BATCH: u8 = 8;

const LANG_CQ: u8 = 0;
const LANG_XPATH: u8 = 1;

const FANOUT_ALL: u8 = 0;
const FANOUT_DOC: u8 = 1;
const FANOUT_TAG: u8 = 2;

fn put_lang(out: &mut Vec<u8>, lang: WireLang) {
    out.push(match lang {
        WireLang::Cq => LANG_CQ,
        WireLang::XPath => LANG_XPATH,
    });
}

fn put_fanout(out: &mut Vec<u8>, fanout: &WireFanOut) {
    match fanout {
        WireFanOut::All => {
            out.push(FANOUT_ALL);
            put_str(out, "");
        }
        WireFanOut::Doc(name) => {
            out.push(FANOUT_DOC);
            put_str(out, name);
        }
        WireFanOut::Tag(tag) => {
            out.push(FANOUT_TAG);
            put_str(out, tag);
        }
    }
}

fn read_lang(r: &mut Reader<'_>) -> Result<WireLang, WireError> {
    match r.u8()? {
        LANG_CQ => Ok(WireLang::Cq),
        LANG_XPATH => Ok(WireLang::XPath),
        _ => Err(WireError::BadValue("query language")),
    }
}

fn read_fanout(r: &mut Reader<'_>) -> Result<WireFanOut, WireError> {
    let tag = r.u8()?;
    let target = r.string()?;
    match tag {
        FANOUT_ALL => Ok(WireFanOut::All),
        FANOUT_DOC => Ok(WireFanOut::Doc(target)),
        FANOUT_TAG => Ok(WireFanOut::Tag(target)),
        _ => Err(WireError::BadValue("fan-out")),
    }
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query {
                id,
                lang,
                text,
                fanout,
                fp_key,
            } => {
                out.push(REQ_QUERY);
                put_u64(&mut out, *id);
                put_lang(&mut out, *lang);
                put_str(&mut out, text);
                put_fanout(&mut out, fanout);
                put_u64(&mut out, *fp_key);
            }
            Request::Batch {
                id,
                fanout,
                queries,
            } => {
                out.push(REQ_BATCH);
                put_u64(&mut out, *id);
                put_fanout(&mut out, fanout);
                put_u32(&mut out, queries.len() as u32);
                for query in queries {
                    put_lang(&mut out, query.lang);
                    put_str(&mut out, &query.text);
                    put_u64(&mut out, query.fp_key);
                }
            }
            Request::Ping { id } => {
                out.push(REQ_PING);
                put_u64(&mut out, *id);
            }
            Request::Stats { id } => {
                out.push(REQ_STATS);
                put_u64(&mut out, *id);
            }
        }
        out
    }

    /// Decodes a frame payload as a request.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let request = match r.u8()? {
            REQ_QUERY => {
                let id = r.u64()?;
                let lang = read_lang(&mut r)?;
                let text = r.string()?;
                let fanout = read_fanout(&mut r)?;
                let fp_key = r.u64()?;
                Request::Query {
                    id,
                    lang,
                    text,
                    fanout,
                    fp_key,
                }
            }
            REQ_BATCH => {
                let id = r.u64()?;
                let fanout = read_fanout(&mut r)?;
                let count = r.u32()? as usize;
                // Never pre-reserve the declared count: a corrupt header
                // must not cause an oversized allocation. A lying count
                // runs out of payload and fails as Truncated.
                let mut queries = Vec::new();
                for _ in 0..count {
                    let lang = read_lang(&mut r)?;
                    let text = r.string()?;
                    let fp_key = r.u64()?;
                    queries.push(WireQuery { lang, text, fp_key });
                }
                Request::Batch {
                    id,
                    fanout,
                    queries,
                }
            }
            REQ_PING => Request::Ping { id: r.u64()? },
            REQ_STATS => Request::Stats { id: r.u64()? },
            other => return Err(WireError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(request)
    }

    /// The request id (every request kind carries one).
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. }
            | Request::Batch { id, .. }
            | Request::Ping { id }
            | Request::Stats { id } => *id,
        }
    }
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Answer {
                id,
                fingerprint,
                docs,
                queue_ns,
                exec_ns,
                total_ns,
            } => {
                out.push(RESP_ANSWER);
                put_u64(&mut out, *id);
                put_u64(&mut out, *fingerprint);
                put_u32(&mut out, *docs);
                put_u64(&mut out, *queue_ns);
                put_u64(&mut out, *exec_ns);
                put_u64(&mut out, *total_ns);
            }
            Response::BatchAnswer {
                id,
                docs,
                queue_ns,
                exec_ns,
                total_ns,
                fingerprints,
            } => {
                out.push(RESP_BATCH);
                put_u64(&mut out, *id);
                put_u32(&mut out, *docs);
                put_u64(&mut out, *queue_ns);
                put_u64(&mut out, *exec_ns);
                put_u64(&mut out, *total_ns);
                put_u32(&mut out, fingerprints.len() as u32);
                for fingerprint in fingerprints {
                    put_u64(&mut out, *fingerprint);
                }
            }
            Response::Shed {
                id,
                queue_depth,
                capacity,
            } => {
                out.push(RESP_SHED);
                put_u64(&mut out, *id);
                put_u32(&mut out, *queue_depth);
                put_u32(&mut out, *capacity);
            }
            Response::Error { id, message } => {
                out.push(RESP_ERROR);
                put_u64(&mut out, *id);
                put_str(&mut out, message);
            }
            Response::Pong { id } => {
                out.push(RESP_PONG);
                put_u64(&mut out, *id);
            }
            Response::Stats {
                id,
                admitted,
                executed,
                shed,
                errors,
                queue_depth,
                capacity,
                plan_hits,
                plan_misses,
                plan_analyses,
                plan_cross_document_hits,
                prune_candidates,
                prune_pruned,
                prune_survivors,
                prune_false_positives,
                wal_records,
                wal_bytes,
                snapshot_epoch,
            } => {
                out.push(RESP_STATS_V3);
                put_u64(&mut out, *id);
                put_u64(&mut out, *admitted);
                put_u64(&mut out, *executed);
                put_u64(&mut out, *shed);
                put_u64(&mut out, *errors);
                put_u32(&mut out, *queue_depth);
                put_u32(&mut out, *capacity);
                put_u64(&mut out, *plan_hits);
                put_u64(&mut out, *plan_misses);
                put_u64(&mut out, *plan_analyses);
                put_u64(&mut out, *plan_cross_document_hits);
                put_u64(&mut out, *prune_candidates);
                put_u64(&mut out, *prune_pruned);
                put_u64(&mut out, *prune_survivors);
                put_u64(&mut out, *prune_false_positives);
                put_u64(&mut out, *wal_records);
                put_u64(&mut out, *wal_bytes);
                put_u64(&mut out, *snapshot_epoch);
            }
        }
        out
    }

    /// Decodes a frame payload as a response.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let response = match r.u8()? {
            RESP_ANSWER => Response::Answer {
                id: r.u64()?,
                fingerprint: r.u64()?,
                docs: r.u32()?,
                queue_ns: r.u64()?,
                exec_ns: r.u64()?,
                total_ns: r.u64()?,
            },
            RESP_BATCH => {
                let id = r.u64()?;
                let docs = r.u32()?;
                let queue_ns = r.u64()?;
                let exec_ns = r.u64()?;
                let total_ns = r.u64()?;
                let count = r.u32()? as usize;
                // As with batch requests: no reservation from the declared
                // count — push until the count is met or the payload ends.
                let mut fingerprints = Vec::new();
                for _ in 0..count {
                    fingerprints.push(r.u64()?);
                }
                Response::BatchAnswer {
                    id,
                    docs,
                    queue_ns,
                    exec_ns,
                    total_ns,
                    fingerprints,
                }
            }
            RESP_SHED => Response::Shed {
                id: r.u64()?,
                queue_depth: r.u32()?,
                capacity: r.u32()?,
            },
            RESP_ERROR => Response::Error {
                id: r.u64()?,
                message: r.string()?,
            },
            RESP_PONG => Response::Pong { id: r.u64()? },
            // Legacy stats: a pre-pruning server's layout. The counters it
            // does not know about decode as zero.
            RESP_STATS => Response::Stats {
                id: r.u64()?,
                admitted: r.u64()?,
                executed: r.u64()?,
                shed: r.u64()?,
                errors: r.u64()?,
                queue_depth: r.u32()?,
                capacity: r.u32()?,
                plan_hits: 0,
                plan_misses: 0,
                plan_analyses: 0,
                plan_cross_document_hits: 0,
                prune_candidates: 0,
                prune_pruned: 0,
                prune_survivors: 0,
                prune_false_positives: 0,
                wal_records: 0,
                wal_bytes: 0,
                snapshot_epoch: 0,
            },
            // v2 stats: a pre-durability server's layout; the durability
            // counters decode as zero.
            RESP_STATS_V2 => Response::Stats {
                id: r.u64()?,
                admitted: r.u64()?,
                executed: r.u64()?,
                shed: r.u64()?,
                errors: r.u64()?,
                queue_depth: r.u32()?,
                capacity: r.u32()?,
                plan_hits: r.u64()?,
                plan_misses: r.u64()?,
                plan_analyses: r.u64()?,
                plan_cross_document_hits: r.u64()?,
                prune_candidates: r.u64()?,
                prune_pruned: r.u64()?,
                prune_survivors: r.u64()?,
                prune_false_positives: r.u64()?,
                wal_records: 0,
                wal_bytes: 0,
                snapshot_epoch: 0,
            },
            RESP_STATS_V3 => Response::Stats {
                id: r.u64()?,
                admitted: r.u64()?,
                executed: r.u64()?,
                shed: r.u64()?,
                errors: r.u64()?,
                queue_depth: r.u32()?,
                capacity: r.u32()?,
                plan_hits: r.u64()?,
                plan_misses: r.u64()?,
                plan_analyses: r.u64()?,
                plan_cross_document_hits: r.u64()?,
                prune_candidates: r.u64()?,
                prune_pruned: r.u64()?,
                prune_survivors: r.u64()?,
                prune_false_positives: r.u64()?,
                wal_records: r.u64()?,
                wal_bytes: r.u64()?,
                snapshot_epoch: r.u64()?,
            },
            other => return Err(WireError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(response)
    }

    /// The id of the request this response belongs to.
    pub fn id(&self) -> u64 {
        match self {
            Response::Answer { id, .. }
            | Response::BatchAnswer { id, .. }
            | Response::Shed { id, .. }
            | Response::Error { id, .. }
            | Response::Pong { id }
            | Response::Stats { id, .. } => *id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let requests = [
            Request::Query {
                id: 7,
                lang: WireLang::Cq,
                text: "Q(y) :- A(x), Child+(x, y), B(y).".into(),
                fanout: WireFanOut::All,
                fp_key: 3,
            },
            Request::Query {
                id: u64::MAX,
                lang: WireLang::XPath,
                text: "//A[B]/following::C".into(),
                fanout: WireFanOut::Doc("doc-0001".into()),
                fp_key: 0,
            },
            Request::Query {
                id: 0,
                lang: WireLang::Cq,
                text: String::new(),
                fanout: WireFanOut::Tag("hot".into()),
                fp_key: u64::MAX,
            },
            Request::Ping { id: 1 },
            Request::Stats { id: 2 },
            Request::Batch {
                id: 21,
                fanout: WireFanOut::Tag("hot".into()),
                queries: vec![
                    WireQuery {
                        lang: WireLang::Cq,
                        text: "Q(y) :- A(x), Child(x, y), B(y).".into(),
                        fp_key: 5,
                    },
                    WireQuery {
                        lang: WireLang::XPath,
                        text: "//A[B]".into(),
                        fp_key: u64::MAX,
                    },
                ],
            },
            // An empty batch is wire-legal (the server answers it with an
            // empty fingerprint list).
            Request::Batch {
                id: 22,
                fanout: WireFanOut::All,
                queries: Vec::new(),
            },
        ];
        for request in requests {
            let wire = request.encode();
            assert_eq!(Request::decode(&wire), Ok(request));
        }
    }

    #[test]
    fn batch_roundtrips_and_rejects_malformed() {
        let response = Response::BatchAnswer {
            id: 30,
            docs: 12,
            queue_ns: 100,
            exec_ns: 900,
            total_ns: 1_000,
            fingerprints: vec![1, u64::MAX, 0, 42],
        };
        let wire = response.encode();
        assert_eq!(Response::decode(&wire), Ok(response));
        // A declared query count larger than the payload holds is
        // Truncated — and must not have provoked a count-sized allocation.
        let mut wire = Vec::new();
        wire.push(4); // REQ_BATCH
        wire.extend_from_slice(&9u64.to_le_bytes());
        wire.push(0); // FANOUT_ALL
        wire.extend_from_slice(&0u32.to_le_bytes()); // empty target string
        wire.extend_from_slice(&u32::MAX.to_le_bytes()); // lying count
        assert_eq!(Request::decode(&wire), Err(WireError::Truncated));
        // Same on the response side: a lying fingerprint count truncates.
        let mut wire = Vec::new();
        wire.push(8); // RESP_BATCH
        wire.extend_from_slice(&9u64.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        for v in [0u64, 0, 0] {
            wire.extend_from_slice(&v.to_le_bytes());
        }
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&7u64.to_le_bytes()); // only one of 2^32-1
        assert_eq!(Response::decode(&wire), Err(WireError::Truncated));
        // A bad language byte inside the batch is a BadValue, as for
        // single-query requests.
        let mut wire = Vec::new();
        wire.push(4);
        wire.extend_from_slice(&9u64.to_le_bytes());
        wire.push(0);
        wire.extend_from_slice(&0u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(9); // bad language
        assert_eq!(
            Request::decode(&wire),
            Err(WireError::BadValue("query language"))
        );
        // Trailing bytes after the last fingerprint are rejected.
        let mut wire = Response::BatchAnswer {
            id: 1,
            docs: 0,
            queue_ns: 0,
            exec_ns: 0,
            total_ns: 0,
            fingerprints: vec![3],
        }
        .encode();
        wire.push(0);
        assert_eq!(Response::decode(&wire), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn response_roundtrips() {
        let responses = [
            Response::Answer {
                id: 9,
                fingerprint: 0xdead_beef,
                docs: 64,
                queue_ns: 1_000,
                exec_ns: 2_000,
                total_ns: 3_000,
            },
            Response::Shed {
                id: 10,
                queue_depth: 65,
                capacity: 64,
            },
            Response::Error {
                id: 11,
                message: "parse error: unexpected token".into(),
            },
            Response::Pong { id: 12 },
            Response::Stats {
                id: 13,
                admitted: 100,
                executed: 99,
                shed: 5,
                errors: 1,
                queue_depth: 1,
                capacity: 64,
                plan_hits: 90,
                plan_misses: 9,
                plan_analyses: 12,
                plan_cross_document_hits: 33,
                prune_candidates: 640,
                prune_pruned: 500,
                prune_survivors: 140,
                prune_false_positives: 7,
                wal_records: 12,
                wal_bytes: 4096,
                snapshot_epoch: 32,
            },
        ];
        for response in responses {
            let wire = response.encode();
            assert_eq!(Response::decode(&wire), Ok(response));
        }
    }

    #[test]
    fn stats_are_versioned_on_the_wire() {
        // Encoding always uses the newest versioned tag...
        let stats = Response::Stats {
            id: 4,
            admitted: 10,
            executed: 9,
            shed: 1,
            errors: 0,
            queue_depth: 2,
            capacity: 8,
            plan_hits: 7,
            plan_misses: 2,
            plan_analyses: 2,
            plan_cross_document_hits: 3,
            prune_candidates: 90,
            prune_pruned: 60,
            prune_survivors: 30,
            prune_false_positives: 4,
            wal_records: 3,
            wal_bytes: 777,
            snapshot_epoch: 2,
        };
        let wire = stats.encode();
        assert_eq!(wire[0], 7, "stats encode under the versioned tag");
        // ...so an old client (which only knows tags 1..=5 or 1..=6)
        // rejects it with a clean UnknownTag error instead of misparsing
        // the longer layout. A byte-for-byte legacy frame still decodes,
        // zero-filling the counters the old server never tracked.
        let mut legacy = Vec::new();
        legacy.push(5); // RESP_STATS (legacy)
        for v in [4u64, 10, 9, 1, 0] {
            legacy.extend_from_slice(&v.to_le_bytes());
        }
        legacy.extend_from_slice(&2u32.to_le_bytes());
        legacy.extend_from_slice(&8u32.to_le_bytes());
        match Response::decode(&legacy).unwrap() {
            Response::Stats {
                id,
                admitted,
                plan_hits,
                prune_candidates,
                wal_records,
                ..
            } => {
                assert_eq!((id, admitted), (4, 10));
                assert_eq!((plan_hits, prune_candidates, wal_records), (0, 0, 0));
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // A v2 frame (pre-durability) decodes with the wal counters
        // zero-filled.
        let mut v2 = Vec::new();
        v2.push(6); // RESP_STATS_V2 (decode-only)
        for v in [4u64, 10, 9, 1, 0] {
            v2.extend_from_slice(&v.to_le_bytes());
        }
        v2.extend_from_slice(&2u32.to_le_bytes());
        v2.extend_from_slice(&8u32.to_le_bytes());
        for v in [7u64, 2, 2, 3, 90, 60, 30, 4] {
            v2.extend_from_slice(&v.to_le_bytes());
        }
        match Response::decode(&v2).unwrap() {
            Response::Stats {
                plan_hits,
                wal_records,
                wal_bytes,
                snapshot_epoch,
                ..
            } => {
                assert_eq!(plan_hits, 7);
                assert_eq!((wal_records, wal_bytes, snapshot_epoch), (0, 0, 0));
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // A legacy frame with trailing bytes from a newer layout is
        // rejected, not silently truncated.
        legacy.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(Response::decode(&legacy), Err(WireError::TrailingBytes(8)));
    }

    #[test]
    fn malformed_payloads_are_errors_not_panics() {
        assert_eq!(Request::decode(&[]), Err(WireError::Truncated));
        assert_eq!(Request::decode(&[99]), Err(WireError::UnknownTag(99)));
        assert_eq!(Response::decode(&[0]), Err(WireError::UnknownTag(0)));
        // Truncated mid-field.
        let wire = Request::Ping { id: 5 }.encode();
        assert_eq!(
            Request::decode(&wire[..wire.len() - 1]),
            Err(WireError::Truncated)
        );
        // Trailing garbage.
        let mut wire = Response::Pong { id: 5 }.encode();
        wire.push(0);
        assert_eq!(Response::decode(&wire), Err(WireError::TrailingBytes(1)));
        // A string length pointing past the payload is Truncated, and the
        // decoder must not have tried to allocate the declared length.
        let mut wire = Vec::new();
        wire.push(3); // REQ_STATS... actually RESP_ERROR for responses
        wire.extend_from_slice(&5u64.to_le_bytes());
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Response::decode(&wire), Err(WireError::Truncated));
        // Invalid UTF-8 in a string field.
        let mut wire = Vec::new();
        wire.push(3);
        wire.extend_from_slice(&5u64.to_le_bytes());
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(Response::decode(&wire), Err(WireError::BadUtf8));
        // Invalid enum bytes.
        let mut wire = Vec::new();
        wire.push(1); // REQ_QUERY
        wire.extend_from_slice(&1u64.to_le_bytes());
        wire.push(9); // bad language
        assert_eq!(
            Request::decode(&wire),
            Err(WireError::BadValue("query language"))
        );
    }
}
