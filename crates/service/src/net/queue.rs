//! Bounded admission queue with explicit load-shedding.
//!
//! The server's backpressure policy lives here: when the queue is full,
//! [`BoundedQueue::try_push`] fails **immediately** — it never blocks the
//! caller and never silently drops the item. The connection handler turns
//! that failure into an explicit `SHED` response, so every request a client
//! sends gets exactly one answer. Workers drain the queue with the blocking
//! [`BoundedQueue::pop`]; once an item is admitted it is guaranteed to be
//! executed (or drained at shutdown), so shedding can never affect an
//! already-admitted request.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] rejected an item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue held `depth` items against a capacity of `capacity`. By
    /// construction `depth >= capacity` — the admission invariant CI
    /// checks on every SHED response.
    Full {
        /// Depth observed at rejection.
        depth: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The queue was closed (server shutting down).
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue: non-blocking producers, blocking consumers.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items at a time.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current depth (racy the instant it returns; for reporting only).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Admits `item` if there is room, or fails immediately. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full {
                depth: state.items.len(),
                capacity: self.capacity,
            });
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed **and**
    /// drained. Admitted items survive `close()`: consumers keep receiving
    /// them until the queue is empty, then get `None`.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes fail, consumers drain what was
    /// already admitted and then receive `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity_without_blocking() {
        let queue = BoundedQueue::new(2);
        assert_eq!(queue.try_push(1), Ok(()));
        assert_eq!(queue.try_push(2), Ok(()));
        // Full: rejected immediately, depth >= capacity.
        assert_eq!(
            queue.try_push(3),
            Err(PushError::Full {
                depth: 2,
                capacity: 2
            })
        );
        // Draining one readmits.
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.try_push(3), Ok(()));
    }

    #[test]
    fn close_drains_admitted_items_then_ends() {
        let queue = Arc::new(BoundedQueue::new(4));
        queue.try_push(10).unwrap();
        queue.try_push(11).unwrap();
        queue.close();
        assert_eq!(queue.try_push(12), Err(PushError::Closed));
        // Already-admitted items still come out, in order.
        assert_eq!(queue.pop(), Some(10));
        assert_eq!(queue.pop(), Some(11));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_close() {
        let queue = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(item) = queue.pop() {
                    seen.push(item);
                }
                seen
            })
        };
        for i in 0..8 {
            // Capacity 4, but the consumer drains concurrently; retry the
            // odd Full.
            loop {
                match queue.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full { .. }) => std::thread::yield_now(),
                    Err(PushError::Closed) => panic!("queue closed early"),
                }
            }
        }
        queue.close();
        let seen = consumer.join().unwrap();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn multi_consumer_drain_after_close_is_complete_and_terminating() {
        // The close/pop contract under contention: every item admitted
        // before close() is drained by *some* consumer exactly once, and
        // every consumer's pop() returns (no missed wakeup leaves a worker
        // blocked forever). Deterministic by construction: all items are
        // admitted before any consumer starts, so there is no push/pop
        // race — only the close() wakeup path is exercised, repeatedly.
        const CONSUMERS: usize = 4;
        const ITEMS: u32 = 64;
        for _ in 0..50 {
            let queue = Arc::new(BoundedQueue::<u32>::new(ITEMS as usize));
            for i in 0..ITEMS {
                queue.try_push(i).unwrap();
            }
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    std::thread::spawn(move || {
                        let mut seen = Vec::new();
                        while let Some(item) = queue.pop() {
                            seen.push(item);
                        }
                        seen
                    })
                })
                .collect();
            queue.close();
            let mut all: Vec<u32> = consumers
                .into_iter()
                .flat_map(|c| c.join().expect("no consumer may hang or panic"))
                .collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (0..ITEMS).collect::<Vec<_>>(),
                "each admitted item drained exactly once"
            );
            assert_eq!(queue.pop(), None, "a closed, drained queue stays done");
        }
    }

    #[test]
    fn consumers_blocked_at_close_time_all_wake() {
        // The sharpest missed-wakeup shape: every consumer is already
        // parked in pop() on an *empty* queue when close() fires. All of
        // them must return None; a notify_one-style close would strand
        // all but one.
        const CONSUMERS: usize = 8;
        for _ in 0..50 {
            let queue = Arc::new(BoundedQueue::<u32>::new(4));
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    std::thread::spawn(move || queue.pop())
                })
                .collect();
            // Give the consumers a chance to park before closing; not
            // required for correctness (close-before-park returns None via
            // the closed check), but it biases the schedule toward the
            // interesting interleaving.
            std::thread::yield_now();
            queue.close();
            for consumer in consumers {
                assert_eq!(
                    consumer.join().expect("consumer paniced"),
                    None,
                    "every parked consumer must wake on close"
                );
            }
        }
    }
}
