//! Sharded multi-document corpus serving: many named documents, one
//! serving plane.
//!
//! A [`Corpus`] scales the single-document [`CorpusHandle`] of
//! [`crate::corpus`] to a production-shaped document store: `S` **shards**,
//! each holding a map from [`DocId`] to a [`Document`], with documents
//! partitioned by a hash of their id. The design keeps every property the
//! single-document layer established and adds exactly one new axis — *many
//! independently mutable documents*:
//!
//! * **Per-document epoch swapping.** Each document owns its own
//!   [`CorpusHandle`]; a commit takes only that document's writer lock and
//!   swaps only that document's epoch pointer. A writer to document A never
//!   blocks — or is even observable by — a reader of document B (asserted by
//!   the corpus routing tests).
//! * **Read-mostly shard maps.** A shard's map is only write-locked by
//!   document *insertion/removal*; looking a document up takes a brief read
//!   lock to clone an `Arc<Document>`, after which snapshotting and
//!   evaluation proceed exactly as in the single-document layer — the
//!   snapshot is immutable, so the read path holds no lock while executing.
//! * **Cross-document plan sharing.** Plan-cache keys bind to a document
//!   *epoch* via its structure hash ([`crate::plan::PlanKey::with_document`]),
//!   not to the document's *name* — so two documents whose current epochs
//!   have **equal structure hashes** (e.g. replicated or templated
//!   documents) resolve to the same cache entry. This is sound for free: the
//!   structure hash covers the whole labeled shape, which is everything a
//!   plan could depend on. The corpus serving loop tags every lookup with
//!   the document's identity so that
//!   [`PlanCacheStats::cross_document_hits`] *proves* the sharing happens.
//!
//! ```
//! use cqt_service::shard::{Corpus, FanOut};
//! use cqt_trees::edit::{EditScript, TreeEdit};
//! use cqt_trees::parse::parse_term;
//!
//! let corpus = Corpus::new(4);
//! corpus.insert("news/a", parse_term("R(A(B), C)").unwrap());
//! corpus.insert_tagged("news/b", &["hot"], parse_term("R(A, A)").unwrap());
//! assert_eq!(corpus.len(), 2);
//!
//! // Readers snapshot one document; writers commit to one document.
//! let before = corpus.snapshot(&"news/a".into()).unwrap();
//! corpus
//!     .commit(
//!         &"news/a".into(),
//!         &EditScript::single(TreeEdit::Relabel { node_pre: 2, labels: vec!["D".into()] }),
//!     )
//!     .unwrap();
//! assert_eq!(corpus.snapshot(&"news/a".into()).unwrap().epoch, 1);
//! assert_eq!(before.epoch, 0); // the old snapshot still serves epoch 0
//!
//! // A commit to one document never moves another document's epoch.
//! assert_eq!(corpus.snapshot(&"news/b".into()).unwrap().epoch, 0);
//!
//! // Fan-out targets select one document, a tagged subset, or everything.
//! assert_eq!(corpus.select(&FanOut::All).len(), 2);
//! assert_eq!(corpus.select(&FanOut::Tagged("hot".into())).len(), 1);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use cqt_trees::edit::{EditError, EditScript};
use cqt_trees::Tree;
use rustc_hash::{FxHashMap, FxHasher};

use crate::corpus::{CommitReport, CorpusHandle, CorpusSnapshot, MutationOracle};
use crate::durability::{
    recover_corpus_dir, DocRecovery, DocWal, Durability, DurabilityStats, RecoveryError,
    RecoveryReport,
};
use crate::index::LabelIndex;
use crate::plan::{PlanCacheStats, PlanOptions};
use crate::stats::CorpusMutationReport;
use crate::workload::QuerySpec;

/// The name of a document in a [`Corpus`]. Cheap to clone (shared string),
/// totally ordered so reports and oracles can index documents
/// deterministically.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(Arc<str>);

impl DocId {
    /// A document id from any string-ish name.
    pub fn new(name: impl AsRef<str>) -> Self {
        DocId(Arc::from(name.as_ref()))
    }

    /// The document name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for DocId {
    fn from(name: &str) -> Self {
        DocId::new(name)
    }
}

impl From<String> for DocId {
    fn from(name: String) -> Self {
        DocId::new(name)
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One named document of a [`Corpus`]: an epoch-swapped [`CorpusHandle`]
/// plus the routing metadata (id, tags, a corpus-unique accounting tag).
#[derive(Debug)]
pub struct Document {
    id: DocId,
    tags: BTreeSet<String>,
    handle: CorpusHandle,
    /// Corpus-unique nonzero identity used to tag plan-cache lookups for
    /// cross-document hit accounting (never 0, which marks untagged
    /// lookups).
    doc_tag: u64,
}

impl Document {
    /// The document's id.
    pub fn id(&self) -> &DocId {
        &self.id
    }

    /// The document's routing tags.
    pub fn tags(&self) -> &BTreeSet<String> {
        &self.tags
    }

    /// Whether the document carries `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.contains(tag)
    }

    /// The document's epoch-swapped serving handle.
    pub fn handle(&self) -> &CorpusHandle {
        &self.handle
    }

    /// The corpus-unique nonzero plan-cache accounting tag
    /// (see [`crate::plan::PlanCache::get_or_compile_tagged`]).
    pub fn doc_tag(&self) -> u64 {
        self.doc_tag
    }
}

/// Which documents a corpus request fans out to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FanOut {
    /// Exactly one document.
    One(DocId),
    /// Every document carrying the tag (scatter–gather).
    Tagged(String),
    /// Every document of the corpus (scatter–gather).
    All,
}

/// Errors of corpus-level operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorpusError {
    /// The addressed document is not in the corpus.
    UnknownDocument(DocId),
    /// A document id was inserted twice.
    DuplicateDocument(DocId),
    /// The document exists but its edit script failed to apply; the
    /// document is untouched.
    Edit(DocId, EditError),
    /// A durable corpus could not set up the document's on-disk log.
    Durability(DocId, String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::UnknownDocument(id) => write!(f, "unknown document {id:?}"),
            CorpusError::DuplicateDocument(id) => write!(f, "document {id:?} already exists"),
            CorpusError::Edit(id, error) => write!(f, "edit on document {id:?} failed: {error}"),
            CorpusError::Durability(id, detail) => {
                write!(f, "durability setup for document {id:?} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// A sharded corpus of named, independently mutable documents. See the
/// [module docs](self).
#[derive(Debug)]
pub struct Corpus {
    shards: Vec<RwLock<FxHashMap<DocId, Arc<Document>>>>,
    /// Source of [`Document::doc_tag`]s; starts at 1 so 0 stays the
    /// "untagged" sentinel of the plan cache.
    next_tag: AtomicU64,
    /// Maintained sorted-by-id snapshot of every document, swapped
    /// copy-on-write by insert/remove so [`FanOut::All`] scatter never
    /// re-collects and re-sorts the shard maps per request.
    sorted: RwLock<Arc<Vec<Arc<Document>>>>,
    /// Label → posting-list pruning index, maintained by the write path.
    /// See [`crate::index`].
    index: LabelIndex,
    /// Whether (and where) inserts and commits are persisted. See
    /// [`crate::durability`].
    durability: Durability,
}

impl Corpus {
    /// An empty corpus with `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        Corpus {
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
            next_tag: AtomicU64::new(1),
            sorted: RwLock::new(Arc::new(Vec::new())),
            index: LabelIndex::new(shards.max(1)),
            durability: Durability::None,
        }
    }

    /// Opens a corpus under a durability config, recovering whatever the
    /// config's directory already holds. With [`Durability::None`] this is
    /// [`Corpus::new`] plus an empty report; with [`Durability::Wal`] every
    /// document directory is recovered (newest valid snapshot + verified
    /// log replay — see [`crate::durability::recover_document`]) and
    /// further inserts/commits are logged.
    pub fn open_durable(
        shards: usize,
        durability: Durability,
    ) -> Result<(Corpus, RecoveryReport), RecoveryError> {
        let mut corpus = Corpus::new(shards);
        let (dir, snapshot_every) = match &durability {
            Durability::None => return Ok((corpus, RecoveryReport::default())),
            Durability::Wal {
                dir,
                snapshot_every,
            } => (dir.clone(), *snapshot_every),
        };
        std::fs::create_dir_all(&dir).map_err(|e| RecoveryError::Io {
            path: dir.clone(),
            detail: e.to_string(),
        })?;
        corpus.durability = durability.clone();
        let mut report = RecoveryReport::default();
        for recovered in recover_corpus_dir(&dir)? {
            let wal = DocWal::reopen(&dir, &recovered, snapshot_every).map_err(|e| {
                RecoveryError::Io {
                    path: dir.join(crate::durability::sanitize_doc_id(&recovered.doc_id)),
                    detail: e.to_string(),
                }
            })?;
            report.documents.push(DocRecovery {
                doc_id: recovered.doc_id.clone(),
                epoch: recovered.epoch,
                snapshot_epoch: recovered.snapshot_epoch,
                replayed_records: recovered.replayed_records,
                torn_bytes: recovered.torn_bytes,
            });
            corpus
                .insert_recovered(
                    &recovered.doc_id,
                    &recovered.tags,
                    recovered.tree,
                    recovered.epoch,
                    Some(wal),
                )
                .map_err(|e| RecoveryError::Replay {
                    path: dir.clone(),
                    record: 0,
                    detail: e.to_string(),
                })?;
        }
        report.documents.sort_by(|a, b| a.doc_id.cmp(&b.doc_id));
        Ok((corpus, report))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `id` routes to: a hash of the document *name* modulo
    /// the shard count — stable across processes for a fixed shard count.
    ///
    /// The Fx hash is passed through an avalanche finalizer first: Fx's low
    /// bits are dominated by the first input byte, so ids sharing a prefix
    /// (`doc-0`, `doc-1`, …) would otherwise all land on one shard.
    pub fn shard_of(&self, id: &DocId) -> usize {
        let mut hasher = FxHasher::default();
        hasher.write(id.as_str().as_bytes());
        let mut h = hasher.finish();
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % self.shards.len() as u64) as usize
    }

    fn shard(&self, id: &DocId) -> &RwLock<FxHashMap<DocId, Arc<Document>>> {
        &self.shards[self.shard_of(id)]
    }

    /// Inserts a document with no tags. See [`Corpus::insert_tagged`].
    pub fn insert(&self, id: impl Into<DocId>, tree: Tree) -> Result<Arc<Document>, CorpusError> {
        self.insert_tagged(id, &[], tree)
    }

    /// Inserts a new document under `id` with the given routing tags,
    /// serving `tree` as its epoch 0. Fails on a duplicate id (documents are
    /// mutated through [`Corpus::commit`], never by re-insertion).
    ///
    /// This is the only operation (besides [`Corpus::remove`]) that
    /// write-locks a shard map, and it locks exactly one shard.
    pub fn insert_tagged(
        &self,
        id: impl Into<DocId>,
        tags: &[&str],
        tree: Tree,
    ) -> Result<Arc<Document>, CorpusError> {
        let id = id.into();
        let tag_strings: Vec<String> = tags.iter().map(|t| t.to_string()).collect();
        let handle = match &self.durability {
            Durability::None => CorpusHandle::new(tree),
            Durability::Wal {
                dir,
                snapshot_every,
            } => {
                // Make epoch 0 durable before it is servable: the document
                // directory, its epoch-0 snapshot, and an empty log.
                let wal = DocWal::create(dir, id.as_str(), &tag_strings, *snapshot_every, &tree)
                    .map_err(|e| CorpusError::Durability(id.clone(), e.to_string()))?;
                CorpusHandle::recovered(tree, 0, Some(wal))
            }
        };
        self.register(id, tag_strings, handle)
    }

    /// Inserts an already-recovered document at its recovered epoch —
    /// shared by [`Corpus::open_durable`] and the follower's catch-up path.
    pub(crate) fn insert_recovered(
        &self,
        id: &str,
        tags: &[String],
        tree: Tree,
        epoch: u64,
        wal: Option<DocWal>,
    ) -> Result<Arc<Document>, CorpusError> {
        self.register(
            DocId::new(id),
            tags.to_vec(),
            CorpusHandle::recovered(tree, epoch, wal),
        )
    }

    /// Registers a built handle under `id`: duplicate check, pruning-index
    /// seed, sorted-snapshot splice.
    fn register(
        &self,
        id: DocId,
        tags: Vec<String>,
        handle: CorpusHandle,
    ) -> Result<Arc<Document>, CorpusError> {
        let document = Arc::new(Document {
            id: id.clone(),
            tags: tags.into_iter().collect(),
            handle,
            doc_tag: self.next_tag.fetch_add(1, Ordering::Relaxed),
        });
        {
            let mut shard = self.shard(&id).write().expect("shard lock poisoned");
            if shard.contains_key(&id) {
                return Err(CorpusError::DuplicateDocument(id));
            }
            shard.insert(id.clone(), Arc::clone(&document));
        }
        // Seed the pruning index from the epoch-0 summary (built here, at
        // prepare time) and splice the document into the sorted snapshot.
        let snapshot = document.handle.snapshot();
        self.index.add_document(
            &id,
            snapshot
                .prepared
                .doc_summary()
                .labels()
                .iter()
                .map(String::as_str),
        );
        let mut sorted = self.sorted.write().expect("sorted snapshot lock poisoned");
        let mut next = (**sorted).clone();
        let at = next
            .binary_search_by(|d| d.id.cmp(&id))
            .unwrap_or_else(|at| at);
        next.insert(at, Arc::clone(&document));
        *sorted = Arc::new(next);
        drop(sorted);
        Ok(document)
    }

    /// Removes and returns the document under `id`. Readers still holding
    /// the document (or snapshots of it) keep serving it; the corpus just
    /// stops routing to it, drops its posting lists, and splices it out of
    /// the sorted scatter snapshot. On a durable corpus the document's
    /// on-disk directory is deleted too (a follower sees the removal on
    /// its next poll).
    pub fn remove(&self, id: &DocId) -> Option<Arc<Document>> {
        let removed = self
            .shard(id)
            .write()
            .expect("shard lock poisoned")
            .remove(id);
        if let Some(document) = &removed {
            if let Some(wal) = document.handle.wal() {
                wal.remove_dir();
            }
            let snapshot = document.handle.snapshot();
            self.index.remove_document(
                id,
                snapshot
                    .prepared
                    .doc_summary()
                    .labels()
                    .iter()
                    .map(String::as_str),
            );
            let mut sorted = self.sorted.write().expect("sorted snapshot lock poisoned");
            let next: Vec<Arc<Document>> = sorted.iter().filter(|d| d.id != *id).cloned().collect();
            *sorted = Arc::new(next);
        }
        removed
    }

    /// The document under `id`. The shard read lock is held only while the
    /// `Arc` is cloned.
    pub fn get(&self, id: &DocId) -> Option<Arc<Document>> {
        self.shard(id)
            .read()
            .expect("shard lock poisoned")
            .get(id)
            .cloned()
    }

    /// The current epoch snapshot of the document under `id`. Evaluation
    /// against the snapshot runs lock-free, exactly as in the
    /// single-document layer.
    pub fn snapshot(&self, id: &DocId) -> Option<CorpusSnapshot> {
        self.get(id).map(|document| document.handle.snapshot())
    }

    /// Applies `script` to the document under `id`, swapping in its next
    /// epoch. Takes only that document's writer lock: commits to distinct
    /// documents run fully in parallel, and no reader of any document is
    /// blocked (readers of *this* document keep serving the epoch they
    /// snapshot).
    pub fn commit(&self, id: &DocId, script: &EditScript) -> Result<CommitReport, CorpusError> {
        let document = self
            .get(id)
            .ok_or_else(|| CorpusError::UnknownDocument(id.clone()))?;
        let report = document
            .handle
            .commit(script)
            .map_err(|error| CorpusError::Edit(id.clone(), error))?;
        // Sync the pruning index for exactly the labels this commit may have
        // touched, probing the new epoch's summary (carried cheaply for
        // relabel-only commits). Any window between the epoch swap and this
        // sync is covered by the read path's per-snapshot double check.
        let summary_snapshot = document.handle.snapshot();
        let summary = summary_snapshot.prepared.doc_summary();
        for label in &report.summary.touched_labels {
            if summary.has_label(label) {
                self.index.add(label, id);
            } else {
                self.index.remove(label, id);
            }
        }
        Ok(report)
    }

    /// Total number of documents.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .sum()
    }

    /// Whether the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Documents per shard, for balance diagnostics.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .collect()
    }

    /// Every document, sorted by id (deterministic scatter order). Returns
    /// the maintained snapshot by `Arc` — an O(1) pointer clone, no shard
    /// locking or re-sorting per scatter.
    pub fn documents(&self) -> Arc<Vec<Arc<Document>>> {
        Arc::clone(&self.sorted.read().expect("sorted snapshot lock poisoned"))
    }

    /// The documents a [`FanOut`] target resolves to, sorted by id. An
    /// unknown [`FanOut::One`] id resolves to the empty list (the runner
    /// reports zero per-document executions for it). [`FanOut::All`] shares
    /// the maintained sorted snapshot without copying.
    pub fn select(&self, target: &FanOut) -> Arc<Vec<Arc<Document>>> {
        match target {
            FanOut::One(id) => Arc::new(self.get(id).into_iter().collect()),
            FanOut::Tagged(tag) => Arc::new(
                self.documents()
                    .iter()
                    .filter(|d| d.has_tag(tag))
                    .cloned()
                    .collect(),
            ),
            FanOut::All => self.documents(),
        }
    }

    /// The corpus's label → posting-list pruning index, maintained by
    /// insert/remove/commit. See [`crate::index`] for the consistency
    /// contract.
    pub fn label_index(&self) -> &LabelIndex {
        &self.index
    }

    /// The corpus's durability configuration.
    pub fn durability(&self) -> &Durability {
        &self.durability
    }

    /// Aggregated durability counters across every document's log: records
    /// and bytes sum, the snapshot epoch is the maximum. All zeros on an
    /// in-memory corpus.
    pub fn durability_stats(&self) -> DurabilityStats {
        let mut total = DurabilityStats::default();
        for document in self.documents().iter() {
            if let Some(stats) = document.handle.wal_stats() {
                total.absorb(&stats);
            }
        }
        total
    }

    /// The fraction of documents sharing their current structure hash with
    /// at least one *other* document — the corpus's plan-sharing
    /// opportunity. 0.0 for an empty corpus.
    pub fn structure_collision_rate(&self) -> f64 {
        let documents = self.documents();
        if documents.is_empty() {
            return 0.0;
        }
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for document in documents.iter() {
            *counts.entry(document.handle.structure_hash()).or_default() += 1;
        }
        let colliding: usize = counts.values().filter(|&&c| c > 1).sum();
        colliding as f64 / documents.len() as f64
    }
}

/// Ground truth for a multi-writer corpus mutation run: one
/// [`MutationOracle`] per document (documents without a writer get a
/// single-epoch oracle), checked against the `(doc, query, epoch,
/// fingerprint)` observations of a
/// [`crate::runner::ServiceRunner::run_corpus_mutating`] run.
///
/// Beyond per-document epoch consistency, the corpus-level check enforces
/// **writer isolation**: a document with no writer must only ever be
/// observed at epoch 0 — a commit to document A that moved a reader of
/// document B off its epoch would surface here.
#[derive(Clone, Debug)]
pub struct CorpusMutationOracle {
    per_doc: BTreeMap<DocId, MutationOracle>,
}

impl CorpusMutationOracle {
    /// Replays every document: `initial` maps ids to epoch-0 trees,
    /// `writers` maps ids to the scripts their writer commits in order
    /// (missing ids are frozen documents with a single epoch).
    pub fn build(
        initial: &BTreeMap<DocId, Tree>,
        writers: &BTreeMap<DocId, Vec<EditScript>>,
        queries: &[QuerySpec],
        options: &PlanOptions,
    ) -> Result<Self, EditError> {
        let empty: Vec<EditScript> = Vec::new();
        let mut per_doc = BTreeMap::new();
        for (id, tree) in initial {
            let scripts = writers.get(id).unwrap_or(&empty);
            per_doc.insert(
                id.clone(),
                MutationOracle::build(tree, scripts, queries, options)?,
            );
        }
        Ok(CorpusMutationOracle { per_doc })
    }

    /// The per-document oracle of `id`.
    pub fn for_document(&self, id: &DocId) -> Option<&MutationOracle> {
        self.per_doc.get(id)
    }

    /// Verifies every observation of a corpus mutation run: the answer must
    /// match the owning document's oracle at the *exact* epoch the reader
    /// snapshot, and a document whose oracle covers only epoch 0 (no
    /// writer) must never be observed anywhere else.
    pub fn check(&self, report: &CorpusMutationReport) -> Result<(), String> {
        for (id, query, epoch, fingerprint) in &report.observations {
            let oracle = self
                .per_doc
                .get(id)
                .ok_or_else(|| format!("observation for unknown document {id:?}"))?;
            match oracle.expected(*query, *epoch) {
                Some(want) if want == *fingerprint => {}
                Some(want) => {
                    return Err(format!(
                        "document {id:?}, query {query} at epoch {epoch}: observed answer \
                         fingerprint {fingerprint:#018x} but the oracle says {want:#018x} — \
                         a blended or stale answer"
                    ))
                }
                None => {
                    return Err(format!(
                        "document {id:?}, query {query} observed at unknown epoch {epoch} \
                         (oracle covers 0..{}): a writer on another document must never \
                         move this document's epoch",
                        oracle.epochs()
                    ))
                }
            }
        }
        Ok(())
    }
}

/// Summary of the plan-sharing a corpus run achieved, derived from
/// [`PlanCacheStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SharingSummary {
    /// Total cache lookups (hits + misses).
    pub lookups: u64,
    /// Hits served to a different document than the one that compiled the
    /// entry.
    pub cross_document_hits: u64,
    /// `cross_document_hits / lookups` (0.0 when there were no lookups).
    pub cross_document_hit_rate: f64,
}

impl SharingSummary {
    /// Derives the summary from cache counters.
    pub fn from_stats(stats: &PlanCacheStats) -> Self {
        let lookups = stats.hits + stats.misses;
        SharingSummary {
            lookups,
            cross_document_hits: stats.cross_document_hits,
            cross_document_hit_rate: if lookups == 0 {
                0.0
            } else {
                stats.cross_document_hits as f64 / lookups as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqt_trees::edit::TreeEdit;
    use cqt_trees::parse::parse_term;

    fn corpus_of(names: &[&str]) -> Corpus {
        let corpus = Corpus::new(4);
        for name in names {
            corpus
                .insert(*name, parse_term("R(A(B), C)").unwrap())
                .unwrap();
        }
        corpus
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_shards_eventually() {
        let corpus = corpus_of(&[]);
        let id = DocId::new("doc-42");
        assert_eq!(corpus.shard_of(&id), corpus.shard_of(&DocId::new("doc-42")));
        let mut seen = BTreeSet::new();
        for i in 0..64 {
            seen.insert(corpus.shard_of(&DocId::new(format!("doc-{i}"))));
        }
        assert_eq!(seen.len(), corpus.shard_count(), "64 ids hit all 4 shards");
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let corpus = corpus_of(&["a", "b"]);
        assert_eq!(corpus.len(), 2);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.shard_sizes().iter().sum::<usize>(), 2);
        assert!(corpus.get(&"a".into()).is_some());
        assert!(corpus.get(&"missing".into()).is_none());
        assert_eq!(
            corpus.insert("a", parse_term("R(A)").unwrap()).unwrap_err(),
            CorpusError::DuplicateDocument("a".into())
        );
        let removed = corpus.remove(&"a".into()).unwrap();
        assert_eq!(removed.id().as_str(), "a");
        assert!(corpus.get(&"a".into()).is_none());
        assert_eq!(corpus.len(), 1);
        assert!(corpus.remove(&"a".into()).is_none());
        // Doc tags are unique and nonzero.
        let b = corpus.get(&"b".into()).unwrap();
        assert_ne!(b.doc_tag(), 0);
        assert_ne!(b.doc_tag(), removed.doc_tag());
    }

    #[test]
    fn fan_out_selection() {
        let corpus = Corpus::new(2);
        corpus
            .insert_tagged("a", &["hot"], parse_term("R(A)").unwrap())
            .unwrap();
        corpus
            .insert_tagged("b", &["hot", "big"], parse_term("R(B)").unwrap())
            .unwrap();
        corpus.insert("c", parse_term("R(C)").unwrap()).unwrap();
        let all = corpus.select(&FanOut::All);
        assert_eq!(
            all.iter().map(|d| d.id().as_str()).collect::<Vec<_>>(),
            ["a", "b", "c"],
            "scatter order is sorted by id"
        );
        let hot = corpus.select(&FanOut::Tagged("hot".into()));
        assert_eq!(hot.len(), 2);
        assert!(hot.iter().all(|d| d.has_tag("hot")));
        assert_eq!(corpus.select(&FanOut::Tagged("cold".into())).len(), 0);
        assert_eq!(corpus.select(&FanOut::One("c".into())).len(), 1);
        assert_eq!(corpus.select(&FanOut::One("zzz".into())).len(), 0);
    }

    #[test]
    fn commits_are_per_document() {
        let corpus = corpus_of(&["a", "b"]);
        let b_before = corpus.snapshot(&"b".into()).unwrap();
        let report = corpus
            .commit(
                &"a".into(),
                &EditScript::single(TreeEdit::Relabel {
                    node_pre: 2,
                    labels: vec!["D".into()],
                }),
            )
            .unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(corpus.snapshot(&"a".into()).unwrap().epoch, 1);
        // Document b is completely untouched: same epoch, same hash, and the
        // pinned snapshot still serves the same prepared tree.
        let b_after = corpus.snapshot(&"b".into()).unwrap();
        assert_eq!(b_after.epoch, 0);
        assert_eq!(
            b_before.prepared.structure_hash(),
            b_after.prepared.structure_hash()
        );
        assert!(Arc::ptr_eq(&b_before.prepared, &b_after.prepared));
        assert_eq!(
            corpus
                .commit(
                    &"missing".into(),
                    &EditScript::single(TreeEdit::DeleteSubtree { node_pre: 1 })
                )
                .unwrap_err(),
            CorpusError::UnknownDocument("missing".into())
        );
        // A failing edit reports the document and leaves it untouched.
        match corpus
            .commit(
                &"b".into(),
                &EditScript::single(TreeEdit::DeleteSubtree { node_pre: 0 }),
            )
            .unwrap_err()
        {
            CorpusError::Edit(id, _) => assert_eq!(id.as_str(), "b"),
            other => panic!("expected edit error, got {other:?}"),
        }
        assert_eq!(corpus.snapshot(&"b".into()).unwrap().epoch, 0);
    }

    #[test]
    fn sorted_snapshot_tracks_inserts_and_removes() {
        let corpus = Corpus::new(4);
        for name in ["m", "a", "z", "f"] {
            corpus.insert(name, parse_term("R(A)").unwrap()).unwrap();
        }
        let before = corpus.documents();
        assert_eq!(
            before.iter().map(|d| d.id().as_str()).collect::<Vec<_>>(),
            ["a", "f", "m", "z"],
            "snapshot stays sorted whatever the insertion order"
        );
        corpus.remove(&"f".into()).unwrap();
        corpus.insert("b", parse_term("R(B)").unwrap()).unwrap();
        assert_eq!(
            corpus
                .documents()
                .iter()
                .map(|d| d.id().as_str())
                .collect::<Vec<_>>(),
            ["a", "b", "m", "z"]
        );
        // The earlier snapshot is immutable — readers that grabbed it keep
        // exactly the view they started with.
        assert_eq!(before.len(), 4);
        // Two consecutive scatters share the same snapshot allocation.
        assert!(Arc::ptr_eq(
            &corpus.select(&FanOut::All),
            &corpus.select(&FanOut::All)
        ));
    }

    #[test]
    fn label_index_follows_the_write_path() {
        let corpus = Corpus::new(2);
        corpus
            .insert("a", parse_term("R(A(B), C)").unwrap())
            .unwrap();
        corpus.insert("b", parse_term("R(B)").unwrap()).unwrap();
        let index = corpus.label_index();
        assert!(index.contains("B", &"a".into()));
        assert!(index.contains("B", &"b".into()));
        assert!(index.contains("C", &"a".into()));
        assert!(!index.contains("C", &"b".into()));
        // A relabel commit syncs exactly the touched labels: B disappears
        // from document a, D appears — visible in the very next epoch.
        corpus
            .commit(
                &"a".into(),
                &EditScript::single(TreeEdit::Relabel {
                    node_pre: 2,
                    labels: vec!["D".into()],
                }),
            )
            .unwrap();
        assert!(!index.contains("B", &"a".into()));
        assert!(index.contains("D", &"a".into()));
        assert!(
            index.contains("B", &"b".into()),
            "other documents untouched"
        );
        // Removing a document drops all of its postings.
        corpus.remove(&"b".into()).unwrap();
        assert!(!index.contains("B", &"b".into()));
        assert_eq!(
            index
                .candidates(&["R".into(), "D".into()])
                .unwrap()
                .iter()
                .map(DocId::as_str)
                .collect::<Vec<_>>(),
            ["a"]
        );
    }

    #[test]
    fn structure_collision_rate_counts_shared_hashes() {
        let corpus = Corpus::new(3);
        assert_eq!(corpus.structure_collision_rate(), 0.0);
        corpus.insert("a", parse_term("R(A)").unwrap()).unwrap();
        corpus.insert("b", parse_term("R(A)").unwrap()).unwrap();
        corpus.insert("c", parse_term("R(B)").unwrap()).unwrap();
        corpus.insert("d", parse_term("R(C)").unwrap()).unwrap();
        assert!((corpus.structure_collision_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn corpus_oracle_rejects_epoch_motion_on_frozen_documents() {
        let mut initial = BTreeMap::new();
        initial.insert(DocId::new("a"), parse_term("R(A(B), C)").unwrap());
        initial.insert(DocId::new("b"), parse_term("R(B)").unwrap());
        let mut writers = BTreeMap::new();
        writers.insert(
            DocId::new("a"),
            vec![EditScript::single(TreeEdit::Relabel {
                node_pre: 2,
                labels: vec!["B".into()],
            })],
        );
        let queries = vec![QuerySpec::parse_cq("Q(x) :- B(x).").unwrap()];
        let oracle =
            CorpusMutationOracle::build(&initial, &writers, &queries, &PlanOptions::default())
                .unwrap();
        assert_eq!(oracle.for_document(&"a".into()).unwrap().epochs(), 2);
        assert_eq!(oracle.for_document(&"b".into()).unwrap().epochs(), 1);
        // A frozen document observed at epoch 1 is a writer-isolation
        // violation, whatever the fingerprint.
        let mut report = CorpusMutationReport::empty_for_test();
        report.observations.insert((DocId::new("b"), 0, 1, 0xdead));
        let err = oracle.check(&report).unwrap_err();
        assert!(err.contains("unknown epoch 1"), "{err}");
    }
}
