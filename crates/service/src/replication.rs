//! Cross-process replication over the TCP front end.
//!
//! A leader serving a **durable** corpus ([`crate::durability`]) answers
//! [`Request::Replicate`] by streaming, per document, either the
//! write-ahead-log records the follower is missing — in their exact
//! on-disk framing, checksum and all — or a full snapshot when the
//! follower is cold, behind the log's truncation horizon, or carries a
//! digest the leader's chain never produced. The [`ReplicaFollower`] on
//! the other end applies every frame through the same verification the
//! crash-recovery path uses: record checksums, the strictly sequential
//! epoch + `structure_digest` chain, and a post-apply digest comparison
//! against what the record promised. A frame is applied (and the
//! follower's position advanced) as soon as it arrives, so a connection
//! torn mid-stream loses nothing: the next [`ReplicaFollower::sync`]
//! resumes from the last applied epoch.
//!
//! Failover is explicit and digest-gated: [`ReplicaFollower::promote`]
//! compares the follower's positions against the dead leader's durable
//! prefix ([`durable_positions`], a scan of the leader's directory that
//! reads headers and digests without replaying trees) and hands the
//! corpus over for writes only on an exact match — same documents, same
//! epochs, same digests. Anything else is a typed [`PromoteError`].
//!
//! The stream rides the ordinary frame + protocol layers ([`crate::net`])
//! so the differential tests can cut the connection at any byte offset;
//! the catch-up algorithm and the promote preconditions are documented in
//! `docs/ARCHITECTURE.md` ("Replication").

use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cqt_trees::codec;

use crate::durability::{
    newest_snapshot, read_wal, recover_document, sanitize_doc_id, wal_record_frame,
    wal_record_from_frame, Durability, RecoveryError, WalRecord, WAL_FILE,
};
use crate::net::frame::{write_frame, FRAME_HEADER_LEN};
use crate::net::protocol::{Request, Response, WirePosition};
use crate::shard::Corpus;

/// The largest replication frame a follower will accept (matches the
/// server's default inbound cap, [`crate::net::DEFAULT_MAX_FRAME_LEN`]).
const MAX_REPL_FRAME_LEN: u32 = crate::net::DEFAULT_MAX_FRAME_LEN;

/// How many times the leader re-reads a document's directory when a scan
/// races the writer's snapshot rotation (snapshot renamed or log
/// truncated between the two reads).
const SCAN_ATTEMPTS: usize = 5;

/// What one replication stream sent, accumulated leader-side for the
/// server's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ReplTotals {
    /// Documents the stream covered.
    pub(crate) documents: u32,
    /// Log records streamed.
    pub(crate) records: u64,
    /// Snapshots streamed.
    pub(crate) snapshots: u32,
    /// Epochs the follower was behind the leader's tips, summed over
    /// documents, as observed at the start of the stream.
    pub(crate) lag_epochs: u64,
}

/// One document's durable state as scanned from disk: the newest readable
/// snapshot plus the contiguous log records after it.
struct DocScan {
    snapshot: crate::durability::Snapshot,
    records: Vec<WalRecord>,
}

impl DocScan {
    /// The newest durable epoch.
    fn tip_epoch(&self) -> u64 {
        self.snapshot.epoch + self.records.len() as u64
    }

    /// The digest at `epoch`, which must lie in
    /// `snapshot.epoch ..= tip_epoch`.
    fn digest_at(&self, epoch: u64) -> u64 {
        if epoch == self.snapshot.epoch {
            self.snapshot.digest
        } else {
            self.records[(epoch - self.snapshot.epoch - 1) as usize].post_digest
        }
    }
}

/// Scans one document directory, retrying across the writer's snapshot
/// rotation: between reading the snapshot and reading the log, the writer
/// may have renamed a newer snapshot in and truncated the log, leaving a
/// gap between the two reads. A consistent scan has its filtered records
/// running contiguously from `snapshot.epoch + 1`.
///
/// Returns `Ok(None)` when the directory is gone (the document was
/// removed mid-stream).
fn scan_document(doc_dir: &Path) -> Result<Option<DocScan>, String> {
    let mut last_error = String::new();
    for _ in 0..SCAN_ATTEMPTS {
        if std::fs::metadata(doc_dir).is_err() {
            return Ok(None);
        }
        let snapshot = match newest_snapshot(doc_dir) {
            Ok(snapshot) => snapshot,
            Err(error) => {
                // Mid-rotation (or mid-create) the directory can briefly
                // hold no readable snapshot; re-scan.
                last_error = error.to_string();
                continue;
            }
        };
        let contents = match read_wal(&doc_dir.join(WAL_FILE)) {
            Ok(contents) => contents,
            Err(error) => {
                last_error = error.to_string();
                continue;
            }
        };
        let records: Vec<WalRecord> = contents
            .records
            .into_iter()
            .filter(|record| record.epoch > snapshot.epoch)
            .collect();
        let contiguous = records
            .iter()
            .enumerate()
            .all(|(i, record)| record.epoch == snapshot.epoch + 1 + i as u64);
        if !contiguous {
            last_error = format!(
                "log records do not run contiguously from snapshot epoch {}",
                snapshot.epoch
            );
            continue;
        }
        return Ok(Some(DocScan { snapshot, records }));
    }
    Err(format!(
        "document scan did not stabilize after {SCAN_ATTEMPTS} attempts: {last_error}"
    ))
}

/// Serves one [`Request::Replicate`]: decides, per document, between
/// incremental records and a full snapshot, and emits the stream's frames
/// through `emit` (which returns `false` when the peer is gone, aborting
/// the stream). The terminal [`Response::ReplDone`] is emitted here too.
///
/// Requires a durable corpus — an in-memory corpus has no log to stream.
pub(crate) fn replicate_stream(
    corpus: &Corpus,
    id: u64,
    positions: &[WirePosition],
    emit: &mut dyn FnMut(&Response) -> bool,
) -> Result<ReplTotals, String> {
    let Durability::Wal { dir, .. } = corpus.durability() else {
        return Err("replication requires a durable corpus".to_string());
    };
    let by_doc: BTreeMap<&str, &WirePosition> = positions
        .iter()
        .map(|position| (position.doc_id.as_str(), position))
        .collect();
    let mut totals = ReplTotals::default();
    for document in corpus.documents().iter() {
        let doc_id = document.id().as_str().to_string();
        let doc_dir = dir.join(sanitize_doc_id(&doc_id));
        let Some(scan) = scan_document(&doc_dir)? else {
            // Removed while we were streaming: the follower keeps its copy
            // for now and drops it on a later stream's `removed` list.
            continue;
        };
        totals.documents += 1;
        let tip = scan.tip_epoch();
        // The follower resumes incrementally iff its position lies on the
        // leader's durable chain: an epoch the scan covers, carrying the
        // exact digest the chain had there. Anything else — cold follower,
        // behind the truncation horizon, ahead of the tip, or a matching
        // epoch with a foreign digest — restarts from the snapshot.
        let resume_from = by_doc.get(doc_id.as_str()).and_then(|position| {
            (position.epoch >= scan.snapshot.epoch
                && position.epoch <= tip
                && position.digest == scan.digest_at(position.epoch))
            .then_some(position.epoch)
        });
        let from = match resume_from {
            Some(epoch) => {
                totals.lag_epochs += tip - epoch;
                epoch
            }
            None => {
                totals.lag_epochs += tip;
                totals.snapshots += 1;
                let mut tree_bytes = Vec::new();
                codec::encode_tree(&scan.snapshot.tree, &mut tree_bytes);
                let frame = Response::ReplSnapshot {
                    id,
                    doc_id: doc_id.clone(),
                    tags: scan.snapshot.tags.clone(),
                    epoch: scan.snapshot.epoch,
                    digest: scan.snapshot.digest,
                    tree: tree_bytes,
                };
                if !emit(&frame) {
                    return Ok(totals);
                }
                scan.snapshot.epoch
            }
        };
        for record in &scan.records {
            if record.epoch <= from {
                continue;
            }
            totals.records += 1;
            let frame = Response::ReplRecord {
                id,
                doc_id: doc_id.clone(),
                frame: wal_record_frame(record),
            };
            if !emit(&frame) {
                return Ok(totals);
            }
        }
    }
    let removed: Vec<String> = positions
        .iter()
        .filter(|position| corpus.get(&position.doc_id.as_str().into()).is_none())
        .map(|position| position.doc_id.clone())
        .collect();
    emit(&Response::ReplDone {
        id,
        documents: totals.documents,
        records: totals.records,
        snapshots: totals.snapshots,
        removed,
    });
    Ok(totals)
}

/// Why a [`ReplicaFollower`] sync failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicaError {
    /// Connecting, reading, or writing the socket failed (including a
    /// connection torn mid-stream).
    Io(String),
    /// A frame arrived but could not be decoded as a response.
    Wire(String),
    /// The leader answered the subscription with an error (or an
    /// unexpected frame kind).
    Server(String),
    /// A frame decoded but failed verification or application: a record
    /// checksum, the digest chain, or the commit's outcome disagreed with
    /// what the leader promised.
    Apply(String),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Io(detail) => write!(f, "replication i/o: {detail}"),
            ReplicaError::Wire(detail) => write!(f, "replication wire: {detail}"),
            ReplicaError::Server(detail) => write!(f, "replication server: {detail}"),
            ReplicaError::Apply(detail) => write!(f, "replication apply: {detail}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

/// What one [`ReplicaFollower::sync`] (or one backoff cycle) applied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaProgress {
    /// Log records applied through the commit path.
    pub records_applied: u64,
    /// Documents (re)loaded from a streamed snapshot.
    pub snapshots_loaded: u64,
    /// Documents dropped because the leader removed them.
    pub documents_removed: u64,
    /// Connection attempts made (1 for a first-try sync).
    pub attempts: u32,
}

impl ReplicaProgress {
    fn absorb(&mut self, other: ReplicaProgress) {
        self.records_applied += other.records_applied;
        self.snapshots_loaded += other.snapshots_loaded;
        self.documents_removed += other.documents_removed;
        self.attempts += other.attempts;
    }
}

/// Why [`ReplicaFollower::promote`] refused to open the follower for
/// writes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PromoteError {
    /// The leader's durable prefix has a document the follower never
    /// received.
    MissingDocument(String),
    /// The follower holds a document the leader's durable prefix does not
    /// — it cannot have come from this leader's log.
    UnknownDocument(String),
    /// A document's position disagrees with the leader's durable prefix
    /// in epoch or digest.
    Diverged {
        /// The document.
        doc_id: String,
        /// Epoch of the leader's durable prefix.
        expected_epoch: u64,
        /// Digest of the leader's durable prefix.
        expected_digest: u64,
        /// Epoch the follower is at.
        found_epoch: u64,
        /// Digest the follower holds.
        found_digest: u64,
    },
}

impl std::fmt::Display for PromoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PromoteError::MissingDocument(doc_id) => {
                write!(f, "promote refused: follower never received {doc_id:?}")
            }
            PromoteError::UnknownDocument(doc_id) => {
                write!(
                    f,
                    "promote refused: follower holds {doc_id:?}, absent from the durable prefix"
                )
            }
            PromoteError::Diverged {
                doc_id,
                expected_epoch,
                expected_digest,
                found_epoch,
                found_digest,
            } => write!(
                f,
                "promote refused: {doc_id:?} diverged (durable prefix at epoch {expected_epoch} \
                 digest {expected_digest:#x}, follower at epoch {found_epoch} digest \
                 {found_digest:#x})"
            ),
        }
    }
}

impl std::error::Error for PromoteError {}

/// A follower replica fed over a socket instead of a shared directory
/// (compare [`crate::durability::Follower`]).
///
/// The replica's corpus is plain in-memory ([`Durability::None`]): its
/// durability is the leader's. Every applied record re-runs the full
/// verification chain — frame checksum, sequential epoch, pre-digest
/// match, post-commit digest match — so a replica is only ever at states
/// the leader's durable log actually produced.
pub struct ReplicaFollower {
    addr: SocketAddr,
    corpus: Arc<Corpus>,
    /// Per-document `(epoch, digest)` the replica has applied up to.
    state: Mutex<BTreeMap<String, (u64, u64)>>,
}

impl ReplicaFollower {
    /// A cold replica that will sync from the leader at `addr` into a
    /// fresh `shards`-way corpus. No I/O happens until [`sync`].
    ///
    /// [`sync`]: ReplicaFollower::sync
    pub fn new(addr: SocketAddr, shards: usize) -> Self {
        ReplicaFollower {
            addr,
            corpus: Arc::new(Corpus::new(shards)),
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// The replica's corpus — readable at any time; between syncs it
    /// serves the last applied epochs.
    pub fn corpus(&self) -> Arc<Corpus> {
        Arc::clone(&self.corpus)
    }

    /// Points the replica at a different leader address for subsequent
    /// [`sync`]s, keeping its corpus and positions. Used when a leader
    /// comes back (or a promoted peer takes over) somewhere else.
    ///
    /// [`sync`]: ReplicaFollower::sync
    pub fn retarget(&mut self, addr: SocketAddr) {
        self.addr = addr;
    }

    /// The replica's per-document positions, as it would subscribe with.
    pub fn positions(&self) -> Vec<WirePosition> {
        let state = self.state.lock().expect("replica state lock");
        state
            .iter()
            .map(|(doc_id, (epoch, digest))| WirePosition {
                doc_id: doc_id.clone(),
                epoch: *epoch,
                digest: *digest,
            })
            .collect()
    }

    /// One subscription round trip: connect, subscribe with the current
    /// positions, apply frames until [`Response::ReplDone`].
    ///
    /// Every frame is applied (and the position advanced) as it arrives,
    /// so an error mid-stream — a torn connection included — loses no
    /// applied progress: the next `sync` resumes from the new positions.
    pub fn sync(&self) -> Result<ReplicaProgress, ReplicaError> {
        let io = |error: std::io::Error| ReplicaError::Io(error.to_string());
        let mut stream = TcpStream::connect(self.addr).map_err(io)?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(io)?;
        let request = Request::Replicate {
            id: 0,
            positions: self.positions(),
        };
        write_frame(&mut stream, &request.encode()).map_err(io)?;
        let mut progress = ReplicaProgress {
            attempts: 1,
            ..ReplicaProgress::default()
        };
        loop {
            let payload = read_one_frame(&mut stream).map_err(io)?;
            let response = Response::decode(&payload)
                .map_err(|error| ReplicaError::Wire(error.to_string()))?;
            match response {
                Response::ReplSnapshot {
                    doc_id,
                    tags,
                    epoch,
                    digest,
                    tree,
                    ..
                } => {
                    self.apply_snapshot(&doc_id, &tags, epoch, digest, &tree)?;
                    progress.snapshots_loaded += 1;
                }
                Response::ReplRecord { doc_id, frame, .. } => {
                    self.apply_record(&doc_id, &frame)?;
                    progress.records_applied += 1;
                }
                Response::ReplDone { removed, .. } => {
                    let mut state = self.state.lock().expect("replica state lock");
                    for doc_id in removed {
                        if state.remove(&doc_id).is_some() {
                            self.corpus.remove(&doc_id.as_str().into());
                            progress.documents_removed += 1;
                        }
                    }
                    return Ok(progress);
                }
                Response::Error { message, .. } => return Err(ReplicaError::Server(message)),
                other => {
                    return Err(ReplicaError::Server(format!(
                        "unexpected frame in replication stream: {other:?}"
                    )))
                }
            }
        }
    }

    /// [`sync`] with reconnect-on-failure: up to `attempts` tries, sleeping
    /// `initial` before the second and doubling after each failure.
    /// Progress from failed attempts (frames applied before the cut) is
    /// kept and included in the returned totals.
    ///
    /// [`sync`]: ReplicaFollower::sync
    pub fn sync_with_backoff(
        &self,
        attempts: u32,
        initial: Duration,
    ) -> Result<ReplicaProgress, ReplicaError> {
        let mut total = ReplicaProgress::default();
        let mut delay = initial;
        let mut last = ReplicaError::Io("no attempts made".to_string());
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            match self.sync() {
                Ok(progress) => {
                    total.absorb(progress);
                    return Ok(total);
                }
                Err(error) => {
                    // The failed attempt still counted a connection and may
                    // have applied frames; those live in `state` already,
                    // but the attempt tally must not be lost.
                    total.attempts += 1;
                    last = error;
                }
            }
        }
        Err(last)
    }

    /// Digest-gated failover: consumes the replica and opens its corpus
    /// for writes **iff** its positions exactly match the dead leader's
    /// durable prefix (`durable` as scanned by [`durable_positions`]) —
    /// same documents, same epochs, same digests. The promoted corpus
    /// continues each document's epoch sequence in memory.
    pub fn promote(self, durable: &[WirePosition]) -> Result<Arc<Corpus>, PromoteError> {
        let state = self.state.lock().expect("replica state lock");
        for position in durable {
            match state.get(&position.doc_id) {
                None => return Err(PromoteError::MissingDocument(position.doc_id.clone())),
                Some((epoch, digest)) => {
                    if *epoch != position.epoch || *digest != position.digest {
                        return Err(PromoteError::Diverged {
                            doc_id: position.doc_id.clone(),
                            expected_epoch: position.epoch,
                            expected_digest: position.digest,
                            found_epoch: *epoch,
                            found_digest: *digest,
                        });
                    }
                }
            }
        }
        if let Some(extra) = state
            .keys()
            .find(|doc_id| !durable.iter().any(|p| &p.doc_id == *doc_id))
        {
            return Err(PromoteError::UnknownDocument(extra.clone()));
        }
        drop(state);
        Ok(self.corpus)
    }

    /// Installs a streamed snapshot: decode, verify the digest, replace
    /// whatever the replica held.
    fn apply_snapshot(
        &self,
        doc_id: &str,
        tags: &[String],
        epoch: u64,
        digest: u64,
        tree_bytes: &[u8],
    ) -> Result<(), ReplicaError> {
        let apply = |detail: String| ReplicaError::Apply(format!("{doc_id:?}: {detail}"));
        let tree = codec::tree_from_bytes(tree_bytes)
            .map_err(|error| apply(format!("snapshot tree: {error}")))?;
        if tree.structure_digest() != digest {
            return Err(apply(format!(
                "snapshot digest mismatch: promised {:#x}, decoded tree has {:#x}",
                digest,
                tree.structure_digest()
            )));
        }
        let mut state = self.state.lock().expect("replica state lock");
        if state.contains_key(doc_id) {
            self.corpus.remove(&doc_id.into());
        }
        self.corpus
            .insert_recovered(doc_id, tags, tree, epoch, None)
            .map_err(|error| apply(format!("snapshot install: {error:?}")))?;
        state.insert(doc_id.to_string(), (epoch, digest));
        Ok(())
    }

    /// Applies one streamed log record through the commit path, with the
    /// same verification crash recovery performs.
    fn apply_record(&self, doc_id: &str, frame: &[u8]) -> Result<(), ReplicaError> {
        let apply = |detail: String| ReplicaError::Apply(format!("{doc_id:?}: {detail}"));
        let record = wal_record_from_frame(frame).map_err(apply)?;
        let mut state = self.state.lock().expect("replica state lock");
        let Some((epoch, digest)) = state.get(doc_id).copied() else {
            return Err(apply(format!(
                "record for epoch {} arrived before any snapshot",
                record.epoch
            )));
        };
        if record.epoch != epoch + 1 {
            return Err(apply(format!(
                "record epoch {} does not follow applied epoch {epoch}",
                record.epoch
            )));
        }
        if record.pre_digest != digest {
            return Err(apply(format!(
                "digest chain broken at epoch {}: record expects {:#x}, replica is at {digest:#x}",
                record.epoch, record.pre_digest
            )));
        }
        let script = codec::script_from_bytes(&record.script)
            .map_err(|error| apply(format!("record script: {error}")))?;
        let report = self
            .corpus
            .commit(&doc_id.into(), &script)
            .map_err(|error| apply(format!("replay commit: {error:?}")))?;
        if report.epoch != record.epoch || report.structure_hash != record.post_digest {
            return Err(apply(format!(
                "replay of epoch {} produced digest {:#x}, record promised {:#x}",
                record.epoch, report.structure_hash, record.post_digest
            )));
        }
        state.insert(doc_id.to_string(), (record.epoch, record.post_digest));
        Ok(())
    }
}

/// Reads one length-prefixed frame off the socket (blocking), capping the
/// declared length at [`MAX_REPL_FRAME_LEN`] so a corrupt header cannot
/// provoke an oversized allocation.
fn read_one_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    stream.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header);
    if len == 0 || len > MAX_REPL_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("replication frame of {len} bytes outside 1..={MAX_REPL_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Scans a (dead) leader's durable directory into per-document positions
/// — newest snapshot epoch plus the contiguous log records after it —
/// **without** replaying any trees. This is the reference
/// [`ReplicaFollower::promote`] checks a candidate follower against.
///
/// The scan verifies what it reads the way recovery would: record
/// checksums (via the log reader), strictly sequential epochs, and the
/// pre/post digest chain from the snapshot; a broken chain is a
/// [`RecoveryError`], not a position.
pub fn durable_positions(dir: &Path) -> Result<Vec<WirePosition>, RecoveryError> {
    let io = |path: &Path, error: std::io::Error| RecoveryError::Io {
        path: path.to_path_buf(),
        detail: error.to_string(),
    };
    let mut positions = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|error| io(dir, error))?;
    let mut doc_dirs: Vec<std::path::PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|error| io(dir, error))?;
        if entry.path().is_dir() {
            doc_dirs.push(entry.path());
        }
    }
    doc_dirs.sort();
    for doc_dir in doc_dirs {
        let snapshot = newest_snapshot(&doc_dir)?;
        let wal_path = doc_dir.join(WAL_FILE);
        let contents = read_wal(&wal_path)?;
        let mut epoch = snapshot.epoch;
        let mut digest = snapshot.digest;
        for (index, record) in contents
            .records
            .iter()
            .filter(|record| record.epoch > snapshot.epoch)
            .enumerate()
        {
            if record.epoch != epoch + 1 || record.pre_digest != digest {
                return Err(RecoveryError::DigestChain {
                    path: wal_path.clone(),
                    record: index as u64,
                    expected: digest,
                    found: record.pre_digest,
                });
            }
            epoch = record.epoch;
            digest = record.post_digest;
        }
        positions.push(WirePosition {
            doc_id: snapshot.doc_id.clone(),
            epoch,
            digest,
        });
    }
    // `recover_document` proves each position is actually reachable by
    // replay; `durable_positions` intentionally skips that work, but the
    // two must agree on what exists.
    debug_assert!(positions
        .iter()
        .all(|p| recover_document(&dir.join(sanitize_doc_id(&p.doc_id))).is_ok()));
    Ok(positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqt_trees::edit::{EditScript, TreeEdit};
    use cqt_trees::parse::parse_term;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cqt-replication-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_corpus(dir: &Path, snapshot_every: u64) -> Arc<Corpus> {
        let (corpus, _) = Corpus::open_durable(
            2,
            Durability::Wal {
                dir: dir.to_path_buf(),
                snapshot_every,
            },
        )
        .unwrap();
        Arc::new(corpus)
    }

    fn relabel(epoch_hint: u64) -> EditScript {
        EditScript::single(TreeEdit::Relabel {
            node_pre: 0,
            labels: vec![format!("R{epoch_hint}")],
        })
    }

    /// Drives `replicate_stream` in-process (no socket) into a frame list.
    fn stream_frames(corpus: &Corpus, positions: &[WirePosition]) -> (Vec<Response>, ReplTotals) {
        let mut frames = Vec::new();
        let totals = replicate_stream(corpus, 9, positions, &mut |frame| {
            frames.push(frame.clone());
            true
        })
        .unwrap();
        (frames, totals)
    }

    #[test]
    fn cold_stream_sends_snapshots_then_records() {
        let dir = temp_dir("cold");
        let corpus = durable_corpus(&dir, 0);
        corpus
            .insert("doc", parse_term("R(A(B), C)").unwrap())
            .unwrap();
        for epoch in 1..=3 {
            corpus.commit(&"doc".into(), &relabel(epoch)).unwrap();
        }
        let (frames, totals) = stream_frames(&corpus, &[]);
        assert_eq!(totals.documents, 1);
        assert_eq!(totals.snapshots, 1);
        assert_eq!(totals.records, 3);
        assert_eq!(totals.lag_epochs, 3);
        assert!(matches!(frames[0], Response::ReplSnapshot { epoch: 0, .. }));
        assert!(matches!(frames[1], Response::ReplRecord { .. }));
        assert!(matches!(
            frames.last().unwrap(),
            Response::ReplDone {
                documents: 1,
                records: 3,
                snapshots: 1,
                ..
            }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn caught_up_position_streams_nothing_and_divergence_restarts() {
        let dir = temp_dir("caught-up");
        let corpus = durable_corpus(&dir, 0);
        corpus
            .insert("doc", parse_term("R(A(B), C)").unwrap())
            .unwrap();
        corpus.commit(&"doc".into(), &relabel(1)).unwrap();
        let tip = corpus.snapshot(&"doc".into()).unwrap();
        let at_tip = WirePosition {
            doc_id: "doc".into(),
            epoch: tip.epoch,
            digest: tip.prepared.structure_hash(),
        };
        let (frames, totals) = stream_frames(&corpus, std::slice::from_ref(&at_tip));
        assert_eq!(totals.records, 0);
        assert_eq!(totals.snapshots, 0);
        assert_eq!(totals.lag_epochs, 0);
        assert_eq!(frames.len(), 1, "only the Done frame");
        // Same epoch, wrong digest: the chain never produced it, so the
        // leader restarts the document from a snapshot.
        let diverged = WirePosition {
            digest: at_tip.digest ^ 1,
            ..at_tip
        };
        let (frames, totals) = stream_frames(&corpus, &[diverged]);
        assert_eq!(totals.snapshots, 1);
        assert!(matches!(frames[0], Response::ReplSnapshot { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn position_behind_truncation_falls_back_to_snapshot() {
        let dir = temp_dir("truncated");
        // Snapshot every 2 commits: epoch 2's commit truncates the log, so
        // a follower at epoch 1 is behind the horizon.
        let corpus = durable_corpus(&dir, 2);
        corpus
            .insert("doc", parse_term("R(A(B), C)").unwrap())
            .unwrap();
        let report1 = corpus.commit(&"doc".into(), &relabel(1)).unwrap();
        let behind = WirePosition {
            doc_id: "doc".into(),
            epoch: 1,
            digest: report1.structure_hash,
        };
        for epoch in 2..=4 {
            corpus.commit(&"doc".into(), &relabel(epoch)).unwrap();
        }
        let (frames, totals) = stream_frames(&corpus, &[behind]);
        assert_eq!(totals.snapshots, 1, "epoch 1 predates the snapshot");
        assert!(matches!(frames[0], Response::ReplSnapshot { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replication_requires_a_durable_corpus() {
        let corpus = Corpus::new(2);
        let result = replicate_stream(&corpus, 1, &[], &mut |_| true);
        assert!(result.is_err());
    }

    #[test]
    fn removed_documents_are_listed_in_done() {
        let dir = temp_dir("removed");
        let corpus = durable_corpus(&dir, 0);
        corpus.insert("doc", parse_term("R(A)").unwrap()).unwrap();
        let gone = WirePosition {
            doc_id: "long-gone".into(),
            epoch: 7,
            digest: 7,
        };
        let (frames, _) = stream_frames(&corpus, &[gone]);
        let Some(Response::ReplDone { removed, .. }) = frames.last() else {
            panic!("stream must end in Done");
        };
        assert_eq!(removed, &["long-gone".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_positions_match_recovery_and_reject_broken_chains() {
        let dir = temp_dir("positions");
        let corpus = durable_corpus(&dir, 0);
        corpus
            .insert("doc-a", parse_term("R(A(B), C)").unwrap())
            .unwrap();
        corpus.insert("doc-b", parse_term("R(B)").unwrap()).unwrap();
        let report = corpus.commit(&"doc-a".into(), &relabel(1)).unwrap();
        let positions = durable_positions(&dir).unwrap();
        assert_eq!(positions.len(), 2);
        let a = positions.iter().find(|p| p.doc_id == "doc-a").unwrap();
        assert_eq!((a.epoch, a.digest), (1, report.structure_hash));
        let b = positions.iter().find(|p| p.doc_id == "doc-b").unwrap();
        assert_eq!(b.epoch, 0);
        // Break doc-a's chain: append a well-framed, checksummed record
        // whose pre-digest the chain never produced. The scan must refuse
        // with a DigestChain error rather than report a position.
        let bogus = wal_record_frame(&WalRecord {
            epoch: 2,
            pre_digest: report.structure_hash ^ 1,
            post_digest: 7,
            script: codec::script_to_bytes(&relabel(2)),
        });
        let wal_path = dir.join(sanitize_doc_id("doc-a")).join(WAL_FILE);
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .unwrap();
        std::io::Write::write_all(&mut log, &bogus).unwrap();
        drop(log);
        assert!(matches!(
            durable_positions(&dir),
            Err(RecoveryError::DigestChain { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promote_checks_are_exact() {
        let follower = ReplicaFollower::new("127.0.0.1:1".parse().unwrap(), 2);
        // Manufacture a replica state directly (promote is pure over it).
        follower
            .state
            .lock()
            .unwrap()
            .insert("doc".to_string(), (3, 0xabc));
        let exact = [WirePosition {
            doc_id: "doc".into(),
            epoch: 3,
            digest: 0xabc,
        }];
        let stale = [WirePosition {
            doc_id: "doc".into(),
            epoch: 4,
            digest: 0xdef,
        }];
        let follower2 = ReplicaFollower::new("127.0.0.1:1".parse().unwrap(), 2);
        follower2
            .state
            .lock()
            .unwrap()
            .insert("doc".to_string(), (3, 0xabc));
        assert!(matches!(
            follower2.promote(&stale),
            Err(PromoteError::Diverged {
                expected_epoch: 4,
                found_epoch: 3,
                ..
            })
        ));
        let follower3 = ReplicaFollower::new("127.0.0.1:1".parse().unwrap(), 2);
        assert!(matches!(
            follower3.promote(&exact),
            Err(PromoteError::MissingDocument(_))
        ));
        let follower4 = ReplicaFollower::new("127.0.0.1:1".parse().unwrap(), 2);
        follower4
            .state
            .lock()
            .unwrap()
            .insert("doc".to_string(), (3, 0xabc));
        follower4
            .state
            .lock()
            .unwrap()
            .insert("extra".to_string(), (1, 1));
        assert!(matches!(
            follower4.promote(&exact),
            Err(PromoteError::UnknownDocument(_))
        ));
        assert!(follower.promote(&exact).is_ok());
    }

    #[test]
    fn queries_run_identically_on_a_promoted_corpus() {
        // End-to-end in-process: leader commits, frames are hand-carried to
        // a replica's apply path, the replica promotes and keeps writing.
        let dir = temp_dir("promote-e2e");
        let corpus = durable_corpus(&dir, 0);
        corpus
            .insert("doc", parse_term("R(A(B), C)").unwrap())
            .unwrap();
        for epoch in 1..=4 {
            corpus.commit(&"doc".into(), &relabel(epoch)).unwrap();
        }
        let follower = ReplicaFollower::new("127.0.0.1:1".parse().unwrap(), 2);
        let (frames, _) = stream_frames(&corpus, &[]);
        for frame in &frames {
            match frame {
                Response::ReplSnapshot {
                    doc_id,
                    tags,
                    epoch,
                    digest,
                    tree,
                    ..
                } => follower
                    .apply_snapshot(doc_id, tags, *epoch, *digest, tree)
                    .unwrap(),
                Response::ReplRecord { doc_id, frame, .. } => {
                    follower.apply_record(doc_id, frame).unwrap()
                }
                Response::ReplDone { .. } => {}
                other => panic!("unexpected frame {other:?}"),
            }
        }
        let positions = durable_positions(&dir).unwrap();
        let promoted = follower.promote(&positions).unwrap();
        // The promoted corpus is at exactly the leader's epoch and digest...
        let leader_snapshot = corpus.snapshot(&"doc".into()).unwrap();
        let promoted_snapshot = promoted.snapshot(&"doc".into()).unwrap();
        assert_eq!(leader_snapshot.epoch, promoted_snapshot.epoch);
        assert_eq!(
            leader_snapshot.prepared.structure_hash(),
            promoted_snapshot.prepared.structure_hash()
        );
        // ...and keeps writing at the recovered epoch.
        let report = promoted.commit(&"doc".into(), &relabel(5)).unwrap();
        assert_eq!(report.epoch, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
