//! Latency/throughput statistics of a serving run, with JSON rendering.

use std::collections::BTreeSet;

use cqt_core::Answer;

use crate::corpus::CommitReport;
use crate::plan::PlanCacheStats;

/// An order-independent fingerprint of one answer, mixed with a caller
/// `key`: the batch runner keys by request index (so swapping two different
/// answers between requests changes the sum), the mutation runner and the
/// [`crate::corpus::MutationOracle`] key by query index (so fingerprints of
/// the same query are comparable across epochs and runs).
pub fn answer_fingerprint(key: u64, answer: &Answer) -> u64 {
    let mut h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xcafe_f00d;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    match answer {
        Answer::Boolean(b) => mix(u64::from(*b)),
        Answer::Nodes(nodes) => {
            for node in nodes {
                mix(node.index() as u64 + 1);
            }
        }
        Answer::Tuples(tuples) => {
            for tuple in tuples {
                for node in tuple {
                    mix(node.index() as u64 + 1);
                }
                mix(u64::MAX);
            }
        }
    }
    h
}

/// Latency percentiles over one run, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median request latency.
    pub p50_ns: u64,
    /// 99th-percentile request latency.
    pub p99_ns: u64,
    /// Mean request latency.
    pub mean_ns: u64,
    /// Slowest request.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarizes a latency sample; `latencies` is consumed (sorted).
    pub fn from_samples(mut latencies: Vec<u64>) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_unstable();
        let pick = |q: f64| {
            let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[idx]
        };
        let sum: u128 = latencies.iter().map(|&ns| u128::from(ns)).sum();
        LatencySummary {
            p50_ns: pick(0.50),
            p99_ns: pick(0.99),
            mean_ns: (sum / latencies.len() as u128) as u64,
            max_ns: *latencies.last().expect("non-empty"),
        }
    }
}

/// The result of one [`crate::runner::ServiceRunner::run`] call.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Worker threads used.
    pub threads: usize,
    /// Requests executed.
    pub requests: u64,
    /// Wall-clock duration of the whole batch, in nanoseconds.
    pub wall_ns: u64,
    /// Requests per second (requests / wall time).
    pub qps: f64,
    /// Per-request latency percentiles.
    pub latency: LatencySummary,
    /// Order-independent fingerprint of every answer, for cross-checking
    /// runs at different thread counts against each other.
    pub answer_fingerprint: u64,
    /// Plan cache counters at the end of the run.
    pub plan_cache: PlanCacheStats,
}

impl ServiceReport {
    /// Renders the report as a JSON object (hand-formatted: the vendored
    /// serde shim has no serializer, and the schema is small and stable).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"requests\": {}, \"wall_ns\": {}, \"qps\": {:.1}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}, \
             \"answer_fingerprint\": {}, \
             \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"analyses\": {}}}}}",
            self.threads,
            self.requests,
            self.wall_ns,
            self.qps,
            self.latency.p50_ns,
            self.latency.p99_ns,
            self.latency.mean_ns,
            self.latency.max_ns,
            self.answer_fingerprint,
            self.plan_cache.hits,
            self.plan_cache.misses,
            self.plan_cache.analyses,
        )
    }
}

/// The result of one [`crate::runner::ServiceRunner::run_mutating`] call:
/// a read/write run over an epoch-swapped corpus.
#[derive(Clone, Debug)]
pub struct MutationReport {
    /// Reader threads used (the writer is one extra thread).
    pub threads: usize,
    /// Read requests executed (including the epoch probes).
    pub reads: u64,
    /// Wall-clock duration of the whole run, in nanoseconds.
    pub wall_ns: u64,
    /// Read requests per second.
    pub qps: f64,
    /// Per-read latency percentiles (snapshot + plan lookup + execution).
    pub latency: LatencySummary,
    /// One report per committed script, in commit order.
    pub commits: Vec<CommitReport>,
    /// Every distinct `(query index, epoch, answer fingerprint)` a reader
    /// observed — checked against a [`crate::corpus::MutationOracle`] for
    /// epoch consistency.
    pub observations: BTreeSet<(usize, u64, u64)>,
    /// Plan cache counters at the end of the run.
    pub plan_cache: PlanCacheStats,
}

impl MutationReport {
    /// The distinct epochs readers observed.
    pub fn epochs_observed(&self) -> BTreeSet<u64> {
        self.observations
            .iter()
            .map(|&(_, epoch, _)| epoch)
            .collect()
    }

    /// The epoch the corpus ended on (number of commits).
    pub fn final_epoch(&self) -> u64 {
        self.commits.last().map_or(0, |commit| commit.epoch)
    }

    /// Total cache entries carried across all commits.
    pub fn carried_entries(&self) -> u64 {
        self.commits
            .iter()
            .map(|c| c.carried_relations + c.carried_label_sets)
            .sum()
    }

    /// Renders the report as a JSON object (hand-formatted, like
    /// [`ServiceReport::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"reads\": {}, \"wall_ns\": {}, \"qps\": {:.1}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"commits\": {}, \"final_epoch\": {}, \
             \"epochs_observed\": {}, \"carried_entries\": {}, \
             \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"analyses\": {}}}}}",
            self.threads,
            self.reads,
            self.wall_ns,
            self.qps,
            self.latency.p50_ns,
            self.latency.p99_ns,
            self.commits.len(),
            self.final_epoch(),
            self.epochs_observed().len(),
            self.carried_entries(),
            self.plan_cache.hits,
            self.plan_cache.misses,
            self.plan_cache.analyses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let summary = LatencySummary::from_samples((1..=100).collect());
        // Index (99 * 0.5).round() = 50 → the 51st sample.
        assert_eq!(summary.p50_ns, 51);
        assert_eq!(summary.p99_ns, 99);
        assert_eq!(summary.mean_ns, 50);
        assert_eq!(summary.max_ns, 100);
        assert_eq!(
            LatencySummary::from_samples(Vec::new()),
            LatencySummary::default()
        );
        let single = LatencySummary::from_samples(vec![7]);
        assert_eq!(single.p50_ns, 7);
        assert_eq!(single.p99_ns, 7);
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = ServiceReport {
            threads: 4,
            requests: 100,
            wall_ns: 1_000_000,
            qps: 100_000.0,
            latency: LatencySummary {
                p50_ns: 10,
                p99_ns: 90,
                mean_ns: 20,
                max_ns: 95,
            },
            answer_fingerprint: 42,
            plan_cache: PlanCacheStats {
                hits: 95,
                misses: 5,
                analyses: 5,
            },
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for field in [
            "\"threads\": 4",
            "\"qps\": 100000.0",
            "\"p99_ns\": 90",
            "\"analyses\": 5",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
