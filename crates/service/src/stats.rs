//! Latency/throughput statistics of a serving run, with JSON rendering.
//!
//! One report type per serving mode: [`ServiceReport`] (frozen batch),
//! [`MutationReport`] (single-document read/write), [`CorpusReport`]
//! (sharded scatter–gather) and [`CorpusMutationReport`] (multi-writer
//! corpus). All render to JSON by hand — the vendored serde shim has no
//! serializer, and the schemas are small and stable.

use std::collections::{BTreeMap, BTreeSet};

use cqt_core::Answer;

use crate::corpus::CommitReport;
use crate::plan::PlanCacheStats;
use crate::shard::{DocId, SharingSummary};

/// An order-independent fingerprint of one answer, mixed with a caller
/// `key`: the batch runner keys by request index (so swapping two different
/// answers between requests changes the sum), the mutation runner and the
/// [`crate::corpus::MutationOracle`] key by query index (so fingerprints of
/// the same query are comparable across epochs and runs).
pub fn answer_fingerprint(key: u64, answer: &Answer) -> u64 {
    let mut h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xcafe_f00d;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    match answer {
        Answer::Boolean(b) => mix(u64::from(*b)),
        Answer::Nodes(nodes) => {
            for node in nodes {
                mix(node.index() as u64 + 1);
            }
        }
        Answer::Tuples(tuples) => {
            for tuple in tuples {
                for node in tuple {
                    mix(node.index() as u64 + 1);
                }
                mix(u64::MAX);
            }
        }
    }
    h
}

/// Latency percentiles over one run, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median request latency.
    pub p50_ns: u64,
    /// 99th-percentile request latency.
    pub p99_ns: u64,
    /// 99.9th-percentile request latency (the open-loop load generator's
    /// tail metric; equals `max_ns` for samples smaller than ~1000).
    pub p999_ns: u64,
    /// Mean request latency.
    pub mean_ns: u64,
    /// Slowest request.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarizes a latency sample; `latencies` is consumed (sorted).
    pub fn from_samples(mut latencies: Vec<u64>) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_unstable();
        // Ceiling-based nearest rank: the q-quantile is the smallest sample
        // with at least ⌈q·n⌉ samples ≤ it. Rounding the index instead (the
        // previous behaviour) drifts past the intended rank on small
        // samples — p50 of 1..=100 picked the 51st sample, and p99 of a
        // 10-sample vector picked the max even though rank 10 is p100.
        let pick = |q: f64| {
            let n = latencies.len();
            let rank = (q * n as f64).ceil() as usize;
            latencies[rank.clamp(1, n) - 1]
        };
        let sum: u128 = latencies.iter().map(|&ns| u128::from(ns)).sum();
        LatencySummary {
            p50_ns: pick(0.50),
            p99_ns: pick(0.99),
            p999_ns: pick(0.999),
            mean_ns: (sum / latencies.len() as u128) as u64,
            max_ns: *latencies.last().expect("non-empty"),
        }
    }
}

/// The result of one [`crate::runner::ServiceRunner::run`] call.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Worker threads used.
    pub threads: usize,
    /// Requests executed.
    pub requests: u64,
    /// Wall-clock duration of the whole batch, in nanoseconds.
    pub wall_ns: u64,
    /// Requests per second (requests / wall time).
    pub qps: f64,
    /// Per-request latency percentiles.
    pub latency: LatencySummary,
    /// Order-independent fingerprint of every answer, for cross-checking
    /// runs at different thread counts against each other.
    pub answer_fingerprint: u64,
    /// Plan cache counters at the end of the run.
    pub plan_cache: PlanCacheStats,
}

impl ServiceReport {
    /// Renders the report as a JSON object (hand-formatted: the vendored
    /// serde shim has no serializer, and the schema is small and stable).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"requests\": {}, \"wall_ns\": {}, \"qps\": {:.1}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}, \
             \"answer_fingerprint\": {}, \"plan_cache\": {}}}",
            self.threads,
            self.requests,
            self.wall_ns,
            self.qps,
            self.latency.p50_ns,
            self.latency.p99_ns,
            self.latency.mean_ns,
            self.latency.max_ns,
            self.answer_fingerprint,
            plan_cache_json(&self.plan_cache),
        )
    }
}

/// Renders [`PlanCacheStats`] as the JSON object every report embeds.
pub(crate) fn plan_cache_json(stats: &PlanCacheStats) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"analyses\": {}, \"cross_document_hits\": {}}}",
        stats.hits, stats.misses, stats.analyses, stats.cross_document_hits,
    )
}

/// Pruning counters of a corpus scatter–gather run: how much of the
/// fan-out the [`crate::index::LabelIndex`] + per-snapshot
/// [`cqt_trees::DocSummary`] double check saved, and how much it missed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Per-document executions an unpruned scatter would have performed
    /// (`pruned + survivors`).
    pub candidates: u64,
    /// Documents skipped: the plan's required labels/axes are provably
    /// unsatisfiable on the document's snapshot, so the (empty) answer was
    /// emitted without executing.
    pub pruned: u64,
    /// Documents that survived pruning and executed normally.
    pub survivors: u64,
    /// Survivors whose answer turned out empty anyway — the pruning layer's
    /// missed opportunities, a quality metric for the over-approximation
    /// (never a correctness problem).
    pub false_positives: u64,
}

impl PruneStats {
    /// Fraction of candidate executions pruned (0.0 when nothing ran).
    pub fn prune_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned as f64 / self.candidates as f64
        }
    }

    /// Accumulates another worker's counters into this one.
    pub fn absorb(&mut self, other: &PruneStats) {
        self.candidates += other.candidates;
        self.pruned += other.pruned;
        self.survivors += other.survivors;
        self.false_positives += other.false_positives;
    }
}

/// Replication counters of a leader's serving front end: how much the
/// `REPLICATE` streams shipped and how far behind the followers were when
/// they subscribed — reported over the wire by the `RESP_STATS_V4` stats
/// layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Replication streams served.
    pub requests: u64,
    /// Write-ahead-log records streamed to followers.
    pub records_streamed: u64,
    /// Snapshots streamed to followers (cold subscriptions, truncation
    /// gaps, or digest divergence).
    pub snapshots_streamed: u64,
    /// Epochs the subscribing follower was behind the leader's durable
    /// tips, summed over documents, at the start of the most recent
    /// stream.
    pub lag_epochs: u64,
}

/// Renders [`PruneStats`] as the JSON object the corpus reports embed.
pub(crate) fn prune_stats_json(stats: &PruneStats) -> String {
    format!(
        "{{\"candidates\": {}, \"pruned\": {}, \"survivors\": {}, \
         \"false_positives\": {}, \"prune_rate\": {:.4}}}",
        stats.candidates,
        stats.pruned,
        stats.survivors,
        stats.false_positives,
        stats.prune_rate(),
    )
}

/// The result of one [`crate::runner::ServiceRunner::run_mutating`] call:
/// a read/write run over an epoch-swapped corpus.
#[derive(Clone, Debug)]
pub struct MutationReport {
    /// Reader threads used (the writer is one extra thread).
    pub threads: usize,
    /// Read requests executed (including the epoch probes).
    pub reads: u64,
    /// Wall-clock duration of the whole run, in nanoseconds.
    pub wall_ns: u64,
    /// Read requests per second.
    pub qps: f64,
    /// Per-read latency percentiles (snapshot + plan lookup + execution).
    pub latency: LatencySummary,
    /// One report per committed script, in commit order.
    pub commits: Vec<CommitReport>,
    /// Every distinct `(query index, epoch, answer fingerprint)` a reader
    /// observed — checked against a [`crate::corpus::MutationOracle`] for
    /// epoch consistency.
    pub observations: BTreeSet<(usize, u64, u64)>,
    /// Plan cache counters at the end of the run.
    pub plan_cache: PlanCacheStats,
}

impl MutationReport {
    /// The distinct epochs readers observed.
    pub fn epochs_observed(&self) -> BTreeSet<u64> {
        self.observations
            .iter()
            .map(|&(_, epoch, _)| epoch)
            .collect()
    }

    /// The epoch the corpus ended on (number of commits).
    pub fn final_epoch(&self) -> u64 {
        self.commits.last().map_or(0, |commit| commit.epoch)
    }

    /// Total cache entries carried across all commits.
    pub fn carried_entries(&self) -> u64 {
        self.commits
            .iter()
            .map(|c| c.carried_relations + c.carried_label_sets)
            .sum()
    }

    /// Renders the report as a JSON object (hand-formatted, like
    /// [`ServiceReport::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"reads\": {}, \"wall_ns\": {}, \"qps\": {:.1}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"commits\": {}, \"final_epoch\": {}, \
             \"epochs_observed\": {}, \"carried_entries\": {}, \"plan_cache\": {}}}",
            self.threads,
            self.reads,
            self.wall_ns,
            self.qps,
            self.latency.p50_ns,
            self.latency.p99_ns,
            self.commits.len(),
            self.final_epoch(),
            self.epochs_observed().len(),
            self.carried_entries(),
            plan_cache_json(&self.plan_cache),
        )
    }
}

/// The result of one [`crate::runner::ServiceRunner::run_corpus`] call: a
/// scatter–gather batch over a sharded multi-document corpus.
#[derive(Clone, Debug)]
pub struct CorpusReport {
    /// Worker threads used.
    pub threads: usize,
    /// Shards of the corpus served.
    pub shards: usize,
    /// Documents in the corpus at run start.
    pub documents: usize,
    /// Scatter–gather requests executed (each may touch many documents).
    pub requests: u64,
    /// Per-document plan executions performed across all requests.
    pub doc_executions: u64,
    /// Wall-clock duration of the whole batch, in nanoseconds.
    pub wall_ns: u64,
    /// Requests per second (scatter–gather requests / wall time).
    pub qps: f64,
    /// Per-request latency percentiles (a request's latency covers its full
    /// scatter–gather, snapshot to last document).
    pub latency: LatencySummary,
    /// Order-independent fingerprint over every per-document answer,
    /// comparable across thread counts and against a single-threaded
    /// per-document replay (the scatter–gather equivalence tests do both).
    pub answer_fingerprint: u64,
    /// Plan cache counters at the end of the run.
    pub plan_cache: PlanCacheStats,
    /// Cross-document plan-sharing summary derived from `plan_cache`.
    pub sharing: SharingSummary,
    /// Pruning counters of the scatter phase (all-zero when pruning is
    /// disabled in the [`crate::runner::ServiceConfig`]).
    pub prune: PruneStats,
}

impl CorpusReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"shards\": {}, \"documents\": {}, \"requests\": {}, \
             \"doc_executions\": {}, \"wall_ns\": {}, \"qps\": {:.1}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}, \
             \"answer_fingerprint\": {}, \"cross_document_hit_rate\": {:.4}, \
             \"plan_cache\": {}, \"prune\": {}}}",
            self.threads,
            self.shards,
            self.documents,
            self.requests,
            self.doc_executions,
            self.wall_ns,
            self.qps,
            self.latency.p50_ns,
            self.latency.p99_ns,
            self.latency.mean_ns,
            self.latency.max_ns,
            self.answer_fingerprint,
            self.sharing.cross_document_hit_rate,
            plan_cache_json(&self.plan_cache),
            prune_stats_json(&self.prune),
        )
    }
}

/// Cross-query sharing counters of a batched run: how much work the
/// [`crate::batch::PreparedBatch`] layer deduplicated. The first three are
/// plan-time counters (one per distinct batch of the workload); the last
/// three are runtime counters summed over every worker and document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchSharing {
    /// Queries that mapped onto an already-compiled plan of their batch.
    pub deduped_queries: u64,
    /// Distinct entries across the batches' shared-step tables.
    pub shared_steps: u64,
    /// Step resolutions that were hash-cons hits at batch-analysis time —
    /// per-document evaluation the tables save.
    pub reused_steps: u64,
    /// Shared steps evaluated (first touch of a step per document).
    pub step_evals: u64,
    /// Shared-step evaluations saved at runtime: a query requested a step
    /// another query of its batch had already evaluated on that document.
    pub step_hits: u64,
    /// Queries answered empty straight from an empty shared step, without
    /// running an evaluator.
    pub empty_short_circuits: u64,
}

/// Renders [`BatchSharing`] as the JSON object [`BatchReport`] embeds.
pub(crate) fn batch_sharing_json(sharing: &BatchSharing) -> String {
    format!(
        "{{\"deduped_queries\": {}, \"shared_steps\": {}, \"reused_steps\": {}, \
         \"step_evals\": {}, \"step_hits\": {}, \"empty_short_circuits\": {}}}",
        sharing.deduped_queries,
        sharing.shared_steps,
        sharing.reused_steps,
        sharing.step_evals,
        sharing.step_hits,
        sharing.empty_short_circuits,
    )
}

/// The result of one [`crate::runner::ServiceRunner::run_batched`] call: a
/// batched scatter–gather run over a sharded multi-document corpus.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Worker threads used.
    pub threads: usize,
    /// Shards of the corpus served.
    pub shards: usize,
    /// Documents in the corpus at run start.
    pub documents: usize,
    /// Batch instances executed (each serving many queries in one fan-out).
    pub batches: u64,
    /// Query answers produced across all batch instances.
    pub queries: u64,
    /// Per-(query, document) answers folded into the fingerprint.
    pub doc_answers: u64,
    /// Evaluator runs actually performed — below `doc_answers` by exactly
    /// the work that whole-query dedup and pruning saved.
    pub doc_executions: u64,
    /// Wall-clock duration of the whole run, in nanoseconds.
    pub wall_ns: u64,
    /// Query answers per second (`queries` / wall time) — the comparable
    /// number against [`CorpusReport::qps`] on the flattened workload.
    pub qps: f64,
    /// Per-batch-instance latency percentiles (a batch's latency covers
    /// its whole fan-out, every query).
    pub latency: LatencySummary,
    /// Order-independent fingerprint over every per-(query, document)
    /// answer, keyed exactly like [`crate::runner::ServiceRunner::run_corpus`]
    /// on [`crate::batch::BatchWorkload::flatten`] — equality of the two is
    /// the batched path's correctness contract.
    pub answer_fingerprint: u64,
    /// Plan cache counters at the end of the run.
    pub plan_cache: PlanCacheStats,
    /// Cross-query sharing counters of the batch layer.
    pub sharing: BatchSharing,
    /// Pruning counters of the batched scatter (all-zero when pruning is
    /// disabled).
    pub prune: PruneStats,
}

impl BatchReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"shards\": {}, \"documents\": {}, \"batches\": {}, \
             \"queries\": {}, \"doc_answers\": {}, \"doc_executions\": {}, \
             \"wall_ns\": {}, \"qps\": {:.1}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}, \
             \"answer_fingerprint\": {}, \"plan_cache\": {}, \"sharing\": {}, \
             \"prune\": {}}}",
            self.threads,
            self.shards,
            self.documents,
            self.batches,
            self.queries,
            self.doc_answers,
            self.doc_executions,
            self.wall_ns,
            self.qps,
            self.latency.p50_ns,
            self.latency.p99_ns,
            self.latency.mean_ns,
            self.latency.max_ns,
            self.answer_fingerprint,
            plan_cache_json(&self.plan_cache),
            batch_sharing_json(&self.sharing),
            prune_stats_json(&self.prune),
        )
    }
}

/// The result of one [`crate::runner::ServiceRunner::run_corpus_mutating`]
/// call: a multi-writer read/write run over a sharded corpus.
#[derive(Clone, Debug)]
pub struct CorpusMutationReport {
    /// Reader threads used (each writer is one extra thread).
    pub threads: usize,
    /// Writer threads that ran.
    pub writers: usize,
    /// Read requests executed (including the per-document epoch probes).
    pub reads: u64,
    /// Wall-clock duration of the whole run, in nanoseconds.
    pub wall_ns: u64,
    /// Read requests per second.
    pub qps: f64,
    /// Per-read latency percentiles.
    pub latency: LatencySummary,
    /// Commit reports per mutated document, in each writer's commit order.
    pub commits: BTreeMap<DocId, Vec<CommitReport>>,
    /// Every distinct `(document, query index, epoch, answer fingerprint)`
    /// a reader observed — checked against a
    /// [`crate::shard::CorpusMutationOracle`].
    pub observations: BTreeSet<(DocId, usize, u64, u64)>,
    /// Plan cache counters at the end of the run.
    pub plan_cache: PlanCacheStats,
    /// Cross-document plan-sharing summary derived from `plan_cache`.
    pub sharing: SharingSummary,
    /// Pruning counters of the readers' scatter phases (all-zero when
    /// pruning is disabled).
    pub prune: PruneStats,
}

impl CorpusMutationReport {
    /// The distinct epochs readers observed for `doc`.
    pub fn epochs_observed_for(&self, doc: &DocId) -> BTreeSet<u64> {
        self.observations
            .iter()
            .filter(|(id, _, _, _)| id == doc)
            .map(|&(_, _, epoch, _)| epoch)
            .collect()
    }

    /// The epoch each mutated document ended on.
    pub fn final_epochs(&self) -> BTreeMap<DocId, u64> {
        self.commits
            .iter()
            .map(|(id, commits)| (id.clone(), commits.last().map_or(0, |c| c.epoch)))
            .collect()
    }

    /// Total commits across all writers.
    pub fn total_commits(&self) -> usize {
        self.commits.values().map(Vec::len).sum()
    }

    /// Total cache entries carried across all commits of all documents.
    pub fn carried_entries(&self) -> u64 {
        self.commits
            .values()
            .flatten()
            .map(|c| c.carried_relations + c.carried_label_sets)
            .sum()
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"writers\": {}, \"reads\": {}, \"wall_ns\": {}, \
             \"qps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"commits\": {}, \
             \"mutated_documents\": {}, \"carried_entries\": {}, \
             \"cross_document_hit_rate\": {:.4}, \"plan_cache\": {}, \"prune\": {}}}",
            self.threads,
            self.writers,
            self.reads,
            self.wall_ns,
            self.qps,
            self.latency.p50_ns,
            self.latency.p99_ns,
            self.total_commits(),
            self.commits.len(),
            self.carried_entries(),
            self.sharing.cross_document_hit_rate,
            plan_cache_json(&self.plan_cache),
            prune_stats_json(&self.prune),
        )
    }

    /// An empty report for oracle unit tests.
    #[cfg(test)]
    pub(crate) fn empty_for_test() -> Self {
        CorpusMutationReport {
            threads: 0,
            writers: 0,
            reads: 0,
            wall_ns: 0,
            qps: 0.0,
            latency: LatencySummary::default(),
            commits: BTreeMap::new(),
            observations: BTreeSet::new(),
            plan_cache: PlanCacheStats::default(),
            sharing: SharingSummary::default(),
            prune: PruneStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let summary = LatencySummary::from_samples((1..=100).collect());
        // Ceiling nearest-rank on n = 100: rank ⌈0.5·100⌉ = 50 → the 50th
        // sample, rank ⌈0.99·100⌉ = 99, rank ⌈0.999·100⌉ = 100.
        assert_eq!(summary.p50_ns, 50);
        assert_eq!(summary.p99_ns, 99);
        assert_eq!(summary.p999_ns, 100);
        assert_eq!(summary.mean_ns, 50);
        assert_eq!(summary.max_ns, 100);
        assert_eq!(
            LatencySummary::from_samples(Vec::new()),
            LatencySummary::default()
        );
        let single = LatencySummary::from_samples(vec![7]);
        assert_eq!(single.p50_ns, 7);
        assert_eq!(single.p99_ns, 7);
    }

    #[test]
    fn percentiles_use_ceiling_nearest_rank_on_small_samples() {
        // n = 10: p50 is rank ⌈5⌉ = 5 (value 50); p99 is rank ⌈9.9⌉ = 10
        // (the max — with only ten samples the 99th percentile *is* the
        // worst observation); the rounding bug would have picked rank 10
        // for p99 too, but rank 6 for p50.
        let samples: Vec<u64> = (1..=10).map(|i| i * 10).collect();
        let summary = LatencySummary::from_samples(samples);
        assert_eq!(summary.p50_ns, 50);
        assert_eq!(summary.p99_ns, 100);
        assert_eq!(summary.p999_ns, 100);
        // n = 3: p50 is rank ⌈1.5⌉ = 2. The old `.round()` on index
        // (2 × 0.5 = 1.0) happened to agree here, but p99 (index
        // (2 × 0.99).round() = 2) and rank ⌈2.97⌉ = 3 both give the max.
        let summary = LatencySummary::from_samples(vec![30, 10, 20]);
        assert_eq!(summary.p50_ns, 20);
        assert_eq!(summary.p99_ns, 30);
        // n = 2: p50 is rank ⌈1⌉ = 1 — the *lower* of the two samples.
        // The rounding bug picked index (1 × 0.5).round() = 1, the upper.
        let summary = LatencySummary::from_samples(vec![100, 1]);
        assert_eq!(summary.p50_ns, 1);
        assert_eq!(summary.p99_ns, 100);
        assert_eq!(summary.p999_ns, 100);
    }

    #[test]
    fn prune_stats_rate_and_json() {
        let mut stats = PruneStats {
            candidates: 8,
            pruned: 6,
            survivors: 2,
            false_positives: 1,
        };
        assert!((stats.prune_rate() - 0.75).abs() < 1e-9);
        assert_eq!(PruneStats::default().prune_rate(), 0.0);
        stats.absorb(&PruneStats {
            candidates: 2,
            pruned: 0,
            survivors: 2,
            false_positives: 0,
        });
        assert_eq!(stats.candidates, 10);
        assert_eq!(stats.survivors, 4);
        let json = prune_stats_json(&stats);
        assert!(json.contains("\"pruned\": 6"), "{json}");
        assert!(json.contains("\"prune_rate\": 0.6000"), "{json}");
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = ServiceReport {
            threads: 4,
            requests: 100,
            wall_ns: 1_000_000,
            qps: 100_000.0,
            latency: LatencySummary {
                p50_ns: 10,
                p99_ns: 90,
                p999_ns: 94,
                mean_ns: 20,
                max_ns: 95,
            },
            answer_fingerprint: 42,
            plan_cache: PlanCacheStats {
                hits: 95,
                misses: 5,
                analyses: 5,
                cross_document_hits: 2,
            },
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for field in [
            "\"threads\": 4",
            "\"qps\": 100000.0",
            "\"p99_ns\": 90",
            "\"analyses\": 5",
            "\"cross_document_hits\": 2",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
