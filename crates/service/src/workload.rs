//! Workloads: the (query, document) batches the runner shards over threads.
//!
//! Four workload shapes, one per serving mode:
//!
//! * [`Workload`] — a frozen (query × tree × repeats) product over shared
//!   [`PreparedTree`]s, for [`crate::runner::ServiceRunner::run`];
//! * [`MutationWorkload`] — a read stream plus one writer's edit scripts
//!   over a single epoch-swapped document, for
//!   [`crate::runner::ServiceRunner::run_mutating`];
//! * [`CorpusWorkload`] — (query, [`FanOut`]) requests over a sharded
//!   multi-document [`crate::shard::Corpus`]: each request scatters to one
//!   document, a tagged subset, or every document, and gathers per-document
//!   fingerprints — for [`crate::runner::ServiceRunner::run_corpus`];
//! * [`CorpusMutationWorkload`] — a corpus read stream plus **multiple
//!   concurrent writers** (at most one per document), for
//!   [`crate::runner::ServiceRunner::run_corpus_mutating`].

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use cqt_query::{parse_query, ConjunctiveQuery};
use cqt_trees::edit::EditScript;
use cqt_trees::PreparedTree;
use cqt_xpath::{parse_xpath, XPathQuery};

use crate::shard::{DocId, FanOut};

/// One query of a workload: a datalog-syntax conjunctive query or an XPath
/// location-path query. Both ride the same compiled-plan path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuerySpec {
    /// A conjunctive query (possibly cyclic / NP-hard).
    Cq(ConjunctiveQuery),
    /// A positive Core XPath query (compiled to a union of acyclic monadic
    /// conjunctive queries).
    XPath(XPathQuery),
}

impl QuerySpec {
    /// Parses a datalog-syntax conjunctive query, e.g.
    /// `"Q(x) :- A(x), Child(x, y), B(y)."`.
    pub fn parse_cq(text: &str) -> Result<Self, String> {
        parse_query(text)
            .map(QuerySpec::Cq)
            .map_err(|e| e.to_string())
    }

    /// Parses an XPath query, e.g. `"//A[B]/following::C"`.
    pub fn parse_xpath(text: &str) -> Result<Self, String> {
        parse_xpath(text)
            .map(QuerySpec::XPath)
            .map_err(|e| e.to_string())
    }

    /// Wraps an already-built conjunctive query.
    pub fn from_cq(query: ConjunctiveQuery) -> Self {
        QuerySpec::Cq(query)
    }
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuerySpec::Cq(query) => write!(f, "{query}"),
            QuerySpec::XPath(query) => write!(f, "{query}"),
        }
    }
}

/// A batch of requests: every query of `queries` against every tree of
/// `trees`, `repeats` times over. Requests are interleaved query-first so
/// that consecutive requests exercise different plans (the worst case for a
/// plan cache, the common case for live traffic).
#[derive(Clone, Debug)]
pub struct Workload {
    /// The query mix.
    pub queries: Vec<QuerySpec>,
    /// The document corpus, shared (and lazily indexed) across threads.
    pub trees: Vec<Arc<PreparedTree>>,
    /// How many times to run the full (query × tree) product.
    pub repeats: usize,
}

impl Workload {
    /// Builds a workload over the full query × tree product.
    pub fn new(queries: Vec<QuerySpec>, trees: Vec<Arc<PreparedTree>>, repeats: usize) -> Self {
        Workload {
            queries,
            trees,
            repeats,
        }
    }

    /// Total number of requests the runner will execute.
    pub fn request_count(&self) -> usize {
        self.queries.len() * self.trees.len() * self.repeats
    }

    /// Whether the workload contains no requests.
    pub fn is_empty(&self) -> bool {
        self.request_count() == 0
    }

    /// The (query index, tree index) of request number `i`, interleaving
    /// queries fastest.
    pub(crate) fn request(&self, i: usize) -> (usize, usize) {
        let pair = i % (self.queries.len() * self.trees.len());
        (pair % self.queries.len(), pair / self.queries.len())
    }
}

/// A mixed read/write workload over one epoch-swapped document: `reads`
/// read requests (cycling through `queries`) served by N reader threads
/// while a single writer commits `scripts` in order, each script addressed
/// to the tree state left by its predecessors.
///
/// Commit pacing is cursor-driven: the writer commits script `i` once the
/// readers have claimed a fixed fraction of the stream, spreading the epoch
/// swaps over the first 60% of the reads so the tail of the run measurably
/// serves the final epoch.
#[derive(Clone, Debug)]
pub struct MutationWorkload {
    /// The read-side query mix.
    pub queries: Vec<QuerySpec>,
    /// The scripts the writer commits, in order.
    pub scripts: Vec<cqt_trees::edit::EditScript>,
    /// Total read requests.
    pub reads: usize,
}

impl MutationWorkload {
    /// Builds a mutation workload.
    pub fn new(
        queries: Vec<QuerySpec>,
        scripts: Vec<cqt_trees::edit::EditScript>,
        reads: usize,
    ) -> Self {
        MutationWorkload {
            queries,
            scripts,
            reads,
        }
    }

    /// The query index of read request `i`.
    pub(crate) fn query_of(&self, i: usize) -> usize {
        i % self.queries.len()
    }

    /// The read-cursor positions at which the writer commits each script:
    /// evenly spread over the first 60% of the read stream.
    pub(crate) fn commit_points(&self) -> Vec<usize> {
        let spread = self.reads * 3 / 5;
        (0..self.scripts.len())
            .map(|i| spread * (i + 1) / (self.scripts.len() + 1))
            .collect()
    }
}

/// One request of a [`CorpusWorkload`]: a query and the documents it fans
/// out to.
#[derive(Clone, Debug)]
pub struct CorpusRequest {
    /// The query.
    pub query: QuerySpec,
    /// The fan-out target: one document, a tagged subset, or all documents.
    pub target: FanOut,
}

/// A batch of scatter–gather requests over a [`crate::shard::Corpus`]:
/// every request of `requests`, `repeats` times over, interleaved
/// request-first (consecutive reads exercise different plans and different
/// documents — the plan cache's worst case and live traffic's common case).
#[derive(Clone, Debug)]
pub struct CorpusWorkload {
    /// The request mix.
    pub requests: Vec<CorpusRequest>,
    /// How many times to run the full request list.
    pub repeats: usize,
}

impl CorpusWorkload {
    /// Builds a corpus workload.
    pub fn new(requests: Vec<CorpusRequest>, repeats: usize) -> Self {
        CorpusWorkload { requests, repeats }
    }

    /// Total number of requests the runner will execute (each of which may
    /// fan out to many per-document executions).
    pub fn request_count(&self) -> usize {
        self.requests.len() * self.repeats
    }

    /// The request index behind running request number `i`.
    pub(crate) fn request_of(&self, i: usize) -> usize {
        i % self.requests.len()
    }
}

/// A mixed read/write workload over a multi-document corpus: `reads` read
/// requests cycling through (query × document) pairs of `queries` ×
/// `doc_ids`, served by N reader threads, while **one writer thread per
/// entry of `writers`** commits that document's scripts in order.
///
/// At most one writer per document (enforced by
/// [`CorpusMutationWorkload::new`]): commits to one document are serialized
/// by its handle anyway, and one-writer-per-document is what makes the
/// per-document [`crate::shard::CorpusMutationOracle`] replay exact.
/// Writers pace themselves off the shared read cursor exactly like the
/// single-document [`MutationWorkload`]: each writer's scripts are spread
/// evenly over the first 60% of the read stream.
#[derive(Clone, Debug)]
pub struct CorpusMutationWorkload {
    /// The read-side query mix.
    pub queries: Vec<QuerySpec>,
    /// The documents reads cycle through (reads also cover documents no
    /// writer touches — that is how writer isolation gets observed).
    pub doc_ids: Vec<DocId>,
    /// One entry per writer: the document it owns and the scripts it
    /// commits, in order (each addressing the epoch its predecessors left).
    pub writers: Vec<(DocId, Vec<EditScript>)>,
    /// Total read requests.
    pub reads: usize,
}

impl CorpusMutationWorkload {
    /// Builds a corpus mutation workload.
    ///
    /// # Panics
    /// Panics if two writers target the same document.
    pub fn new(
        queries: Vec<QuerySpec>,
        doc_ids: Vec<DocId>,
        writers: Vec<(DocId, Vec<EditScript>)>,
        reads: usize,
    ) -> Self {
        let mut seen = BTreeSet::new();
        for (id, _) in &writers {
            assert!(
                seen.insert(id.clone()),
                "at most one writer per document (duplicate writer for {id:?})"
            );
        }
        CorpusMutationWorkload {
            queries,
            doc_ids,
            writers,
            reads,
        }
    }

    /// The (query index, document index) of read request `i`, interleaving
    /// queries fastest.
    pub(crate) fn read_of(&self, i: usize) -> (usize, usize) {
        (
            i % self.queries.len(),
            (i / self.queries.len()) % self.doc_ids.len().max(1),
        )
    }

    /// The read-cursor positions at which writer `w` commits each of its
    /// scripts: evenly spread over the first 60% of the read stream, offset
    /// per writer so the swap points of different documents interleave.
    pub(crate) fn commit_points(&self, w: usize) -> Vec<usize> {
        let scripts = self.writers[w].1.len();
        let spread = self.reads * 3 / 5;
        (0..scripts)
            .map(|i| {
                let even = spread * (i + 1) / (scripts + 1);
                // Stagger writers by a fraction of one slot so their swaps
                // do not all land on the same cursor value.
                let offset = (w * spread) / (scripts + 1).max(1) / self.writers.len().max(1);
                (even + offset).min(spread)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqt_trees::parse::parse_term;

    #[test]
    fn request_indexing_covers_the_product() {
        let workload = Workload::new(
            vec![
                QuerySpec::parse_cq("Q() :- A(x).").unwrap(),
                QuerySpec::parse_xpath("//A").unwrap(),
            ],
            vec![
                Arc::new(PreparedTree::new(parse_term("A(B)").unwrap())),
                Arc::new(PreparedTree::new(parse_term("A(B, C)").unwrap())),
                Arc::new(PreparedTree::new(parse_term("A").unwrap())),
            ],
            2,
        );
        assert_eq!(workload.request_count(), 12);
        assert!(!workload.is_empty());
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..6 {
            seen.insert(workload.request(i));
        }
        assert_eq!(seen.len(), 6);
        // The second repeat revisits the same pairs.
        assert_eq!(workload.request(6), workload.request(0));
    }

    #[test]
    fn mutation_workload_paces_commits_into_the_read_stream() {
        let workload = MutationWorkload::new(
            vec![
                QuerySpec::parse_cq("Q() :- A(x).").unwrap(),
                QuerySpec::parse_xpath("//A").unwrap(),
            ],
            vec![cqt_trees::edit::EditScript::new(); 3],
            1000,
        );
        let points = workload.commit_points();
        assert_eq!(points.len(), 3);
        assert!(points.windows(2).all(|w| w[0] < w[1]), "{points:?}");
        assert!(*points.last().unwrap() <= 600);
        assert_eq!(workload.query_of(0), 0);
        assert_eq!(workload.query_of(5), 1);
    }

    #[test]
    fn corpus_workload_indexing_and_reads() {
        let workload = CorpusWorkload::new(
            vec![
                CorpusRequest {
                    query: QuerySpec::parse_cq("Q() :- A(x).").unwrap(),
                    target: FanOut::All,
                },
                CorpusRequest {
                    query: QuerySpec::parse_xpath("//A").unwrap(),
                    target: FanOut::One("a".into()),
                },
            ],
            3,
        );
        assert_eq!(workload.request_count(), 6);
        assert_eq!(workload.request_of(0), 0);
        assert_eq!(workload.request_of(1), 1);
        assert_eq!(workload.request_of(2), 0);

        let mutation = CorpusMutationWorkload::new(
            vec![
                QuerySpec::parse_cq("Q() :- A(x).").unwrap(),
                QuerySpec::parse_xpath("//A").unwrap(),
            ],
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                ("a".into(), vec![EditScript::new(); 2]),
                ("b".into(), vec![EditScript::new(); 2]),
            ],
            600,
        );
        // Reads cycle queries fastest, then documents.
        assert_eq!(mutation.read_of(0), (0, 0));
        assert_eq!(mutation.read_of(1), (1, 0));
        assert_eq!(mutation.read_of(2), (0, 1));
        assert_eq!(mutation.read_of(6), (0, 0));
        // Each writer's commit points are increasing and inside the first
        // 60% of the stream; distinct writers are staggered.
        for w in 0..2 {
            let points = mutation.commit_points(w);
            assert_eq!(points.len(), 2);
            assert!(points.windows(2).all(|p| p[0] < p[1]), "{points:?}");
            assert!(*points.last().unwrap() <= 360);
        }
        assert_ne!(mutation.commit_points(0), mutation.commit_points(1));
    }

    #[test]
    #[should_panic(expected = "at most one writer per document")]
    fn duplicate_writers_are_rejected() {
        CorpusMutationWorkload::new(
            vec![QuerySpec::parse_cq("Q() :- A(x).").unwrap()],
            vec!["a".into()],
            vec![
                ("a".into(), vec![EditScript::new()]),
                ("a".into(), vec![EditScript::new()]),
            ],
            10,
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(QuerySpec::parse_cq("not a query").is_err());
        assert!(QuerySpec::parse_xpath("//[").is_err());
        assert!(QuerySpec::parse_cq("Q() :- A(x).").is_ok());
    }
}
