//! Workloads: the (query, document) batches the runner shards over threads.

use std::fmt;
use std::sync::Arc;

use cqt_query::{parse_query, ConjunctiveQuery};
use cqt_trees::PreparedTree;
use cqt_xpath::{parse_xpath, XPathQuery};

/// One query of a workload: a datalog-syntax conjunctive query or an XPath
/// location-path query. Both ride the same compiled-plan path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuerySpec {
    /// A conjunctive query (possibly cyclic / NP-hard).
    Cq(ConjunctiveQuery),
    /// A positive Core XPath query (compiled to a union of acyclic monadic
    /// conjunctive queries).
    XPath(XPathQuery),
}

impl QuerySpec {
    /// Parses a datalog-syntax conjunctive query, e.g.
    /// `"Q(x) :- A(x), Child(x, y), B(y)."`.
    pub fn parse_cq(text: &str) -> Result<Self, String> {
        parse_query(text)
            .map(QuerySpec::Cq)
            .map_err(|e| e.to_string())
    }

    /// Parses an XPath query, e.g. `"//A[B]/following::C"`.
    pub fn parse_xpath(text: &str) -> Result<Self, String> {
        parse_xpath(text)
            .map(QuerySpec::XPath)
            .map_err(|e| e.to_string())
    }

    /// Wraps an already-built conjunctive query.
    pub fn from_cq(query: ConjunctiveQuery) -> Self {
        QuerySpec::Cq(query)
    }
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuerySpec::Cq(query) => write!(f, "{query}"),
            QuerySpec::XPath(query) => write!(f, "{query}"),
        }
    }
}

/// A batch of requests: every query of `queries` against every tree of
/// `trees`, `repeats` times over. Requests are interleaved query-first so
/// that consecutive requests exercise different plans (the worst case for a
/// plan cache, the common case for live traffic).
#[derive(Clone, Debug)]
pub struct Workload {
    /// The query mix.
    pub queries: Vec<QuerySpec>,
    /// The document corpus, shared (and lazily indexed) across threads.
    pub trees: Vec<Arc<PreparedTree>>,
    /// How many times to run the full (query × tree) product.
    pub repeats: usize,
}

impl Workload {
    /// Builds a workload over the full query × tree product.
    pub fn new(queries: Vec<QuerySpec>, trees: Vec<Arc<PreparedTree>>, repeats: usize) -> Self {
        Workload {
            queries,
            trees,
            repeats,
        }
    }

    /// Total number of requests the runner will execute.
    pub fn request_count(&self) -> usize {
        self.queries.len() * self.trees.len() * self.repeats
    }

    /// Whether the workload contains no requests.
    pub fn is_empty(&self) -> bool {
        self.request_count() == 0
    }

    /// The (query index, tree index) of request number `i`, interleaving
    /// queries fastest.
    pub(crate) fn request(&self, i: usize) -> (usize, usize) {
        let pair = i % (self.queries.len() * self.trees.len());
        (pair % self.queries.len(), pair / self.queries.len())
    }
}

/// A mixed read/write workload over one epoch-swapped document: `reads`
/// read requests (cycling through `queries`) served by N reader threads
/// while a single writer commits `scripts` in order, each script addressed
/// to the tree state left by its predecessors.
///
/// Commit pacing is cursor-driven: the writer commits script `i` once the
/// readers have claimed a fixed fraction of the stream, spreading the epoch
/// swaps over the first 60% of the reads so the tail of the run measurably
/// serves the final epoch.
#[derive(Clone, Debug)]
pub struct MutationWorkload {
    /// The read-side query mix.
    pub queries: Vec<QuerySpec>,
    /// The scripts the writer commits, in order.
    pub scripts: Vec<cqt_trees::edit::EditScript>,
    /// Total read requests.
    pub reads: usize,
}

impl MutationWorkload {
    /// Builds a mutation workload.
    pub fn new(
        queries: Vec<QuerySpec>,
        scripts: Vec<cqt_trees::edit::EditScript>,
        reads: usize,
    ) -> Self {
        MutationWorkload {
            queries,
            scripts,
            reads,
        }
    }

    /// The query index of read request `i`.
    pub(crate) fn query_of(&self, i: usize) -> usize {
        i % self.queries.len()
    }

    /// The read-cursor positions at which the writer commits each script:
    /// evenly spread over the first 60% of the read stream.
    pub(crate) fn commit_points(&self) -> Vec<usize> {
        let spread = self.reads * 3 / 5;
        (0..self.scripts.len())
            .map(|i| spread * (i + 1) / (self.scripts.len() + 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqt_trees::parse::parse_term;

    #[test]
    fn request_indexing_covers_the_product() {
        let workload = Workload::new(
            vec![
                QuerySpec::parse_cq("Q() :- A(x).").unwrap(),
                QuerySpec::parse_xpath("//A").unwrap(),
            ],
            vec![
                Arc::new(PreparedTree::new(parse_term("A(B)").unwrap())),
                Arc::new(PreparedTree::new(parse_term("A(B, C)").unwrap())),
                Arc::new(PreparedTree::new(parse_term("A").unwrap())),
            ],
            2,
        );
        assert_eq!(workload.request_count(), 12);
        assert!(!workload.is_empty());
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..6 {
            seen.insert(workload.request(i));
        }
        assert_eq!(seen.len(), 6);
        // The second repeat revisits the same pairs.
        assert_eq!(workload.request(6), workload.request(0));
    }

    #[test]
    fn mutation_workload_paces_commits_into_the_read_stream() {
        let workload = MutationWorkload::new(
            vec![
                QuerySpec::parse_cq("Q() :- A(x).").unwrap(),
                QuerySpec::parse_xpath("//A").unwrap(),
            ],
            vec![cqt_trees::edit::EditScript::new(); 3],
            1000,
        );
        let points = workload.commit_points();
        assert_eq!(points.len(), 3);
        assert!(points.windows(2).all(|w| w[0] < w[1]), "{points:?}");
        assert!(*points.last().unwrap() <= 600);
        assert_eq!(workload.query_of(0), 0);
        assert_eq!(workload.query_of(5), 1);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(QuerySpec::parse_cq("not a query").is_err());
        assert!(QuerySpec::parse_xpath("//[").is_err());
        assert!(QuerySpec::parse_cq("Q() :- A(x).").is_ok());
    }
}
