//! Batched multi-query execution over a sharded corpus.
//!
//! A [`BatchWorkload`] groups k queries into one scatter–gather unit: the
//! batch resolves its [`FanOut`] once, snapshots each document once, and
//! serves every query of the batch from that single snapshot. Three layers
//! of sharing make the batched path cheaper than k one-at-a-time requests:
//!
//! * **whole-query dedup** — repeated [`QuerySpec`]s inside a batch map to
//!   one plan and one execution per document;
//! * **shared-step table** — the distinct queries' compiled disjuncts are
//!   analysed together by a [`cqt_core::BatchPlan`], so identical axis atoms
//!   and location-path prefixes across queries evaluate once per document
//!   and the union of required label sets is warmed up front;
//! * **union pruning** — the corpus label index is intersected once for the
//!   batch's union label requirements; each query then re-checks the
//!   decision against the document's own snapshot summary, so pruning stays
//!   fingerprint-exact per query.
//!
//! The contract tying it all down: [`BatchWorkload::flatten`] produces the
//! [`CorpusWorkload`] of the same queries one-at-a-time, and
//! [`crate::runner::ServiceRunner::run_batched`] folds per-query answers
//! under exactly the fingerprint keys
//! [`crate::runner::ServiceRunner::run_corpus`] would use on that flattened
//! workload — so batched and unbatched runs are fingerprint-identical, with
//! pruning on or off, on quiesced or freshly recovered corpora.

use std::collections::BTreeSet;
use std::sync::Arc;

use cqt_core::{Answer, BatchPlan, BatchScratch};
use cqt_trees::NodeId;

use crate::index::LabelIndex;
use crate::plan::{Plan, PlanCache, PlanKey, PlanOptions};
use crate::runner::should_prune;
use crate::shard::{DocId, Document, FanOut};
use crate::stats::PruneStats;
use crate::workload::{CorpusRequest, CorpusWorkload, QuerySpec};

/// One batch: k queries served from a single fan-out and a single snapshot
/// per document.
#[derive(Clone, Debug)]
pub struct BatchRequest {
    /// The queries of the batch, in answer order.
    pub queries: Vec<QuerySpec>,
    /// The fan-out target shared by every query of the batch.
    pub target: FanOut,
}

/// A workload of batches: every batch of `batches`, `repeats` times over,
/// interleaved batch-first like [`CorpusWorkload`] interleaves requests.
#[derive(Clone, Debug)]
pub struct BatchWorkload {
    /// The batch mix.
    pub batches: Vec<BatchRequest>,
    /// How many times to run the full batch list.
    pub repeats: usize,
}

impl BatchWorkload {
    /// Builds a batch workload.
    pub fn new(batches: Vec<BatchRequest>, repeats: usize) -> Self {
        BatchWorkload { batches, repeats }
    }

    /// Total batch instances the runner will execute.
    pub fn batch_count(&self) -> usize {
        self.batches.len() * self.repeats
    }

    /// Total query answers the runner will produce (each of which may fan
    /// out to many per-document answers).
    pub fn query_count(&self) -> usize {
        self.flat_len() * self.repeats
    }

    /// The batch index behind running batch instance `i`.
    pub(crate) fn batch_of(&self, i: usize) -> usize {
        i % self.batches.len()
    }

    /// Number of queries across all batches (one flattening round).
    pub fn flat_len(&self) -> usize {
        self.batches.iter().map(|b| b.queries.len()).sum()
    }

    /// `flat_base[b]` = index of batch `b`'s first query in the flattened
    /// request list; query `q` of batch `b` on repeat `r` is flat request
    /// `r * flat_len + flat_base[b] + q`.
    pub(crate) fn flat_base(&self) -> Vec<usize> {
        let mut base = Vec::with_capacity(self.batches.len());
        let mut acc = 0;
        for batch in &self.batches {
            base.push(acc);
            acc += batch.queries.len();
        }
        base
    }

    /// The same queries as one-at-a-time scatter–gather requests:
    /// batch order, query order within each batch, same repeat count.
    /// [`crate::runner::ServiceRunner::run_corpus`] on this workload is the
    /// reference run_batched must match fingerprint for fingerprint.
    pub fn flatten(&self) -> CorpusWorkload {
        let requests = self
            .batches
            .iter()
            .flat_map(|batch| {
                batch.queries.iter().map(|query| CorpusRequest {
                    query: query.clone(),
                    target: batch.target.clone(),
                })
            })
            .collect();
        CorpusWorkload::new(requests, self.repeats)
    }
}

/// One batch's queries compiled and analysed for sharing: the deduplicated
/// plans, the cross-query [`BatchPlan`] over their flattened disjuncts, and
/// the union-label posting-list intersection. Immutable and `Sync`; all
/// per-document state lives in the caller's [`BatchScratch`].
#[derive(Debug)]
pub struct PreparedBatch {
    /// One compiled plan per *distinct* spec, in first-appearance order.
    plans: Vec<Arc<Plan>>,
    /// Maps each original query index to its entry in `plans`.
    unique_of: Vec<usize>,
    /// Shared-step analysis over the concatenation of every distinct
    /// plan's disjuncts.
    batch_plan: BatchPlan,
    /// `disjunct_base[u]` = index of plan `u`'s first disjunct in the
    /// flattened disjunct list `batch_plan` was built over.
    disjunct_base: Vec<usize>,
    /// Posting-list survivors of the batch's label-requirement union
    /// (`None` = the index cannot constrain the batch), present only when
    /// pruning is enabled.
    prune: Option<Option<BTreeSet<DocId>>>,
}

impl PreparedBatch {
    /// Compiles and analyses `queries`. Plans resolve through `cache` under
    /// document-independent keys — the same plans every document of the
    /// fan-out will share. `prune_index` enables pruning: the posting lists
    /// of the union of every distinct query's required labels are
    /// intersected once, here.
    pub fn prepare(
        queries: &[QuerySpec],
        cache: &PlanCache,
        options: &PlanOptions,
        prune_index: Option<&LabelIndex>,
    ) -> Self {
        let mut plans: Vec<Arc<Plan>> = Vec::new();
        let mut unique_specs: Vec<&QuerySpec> = Vec::new();
        let mut unique_of = Vec::with_capacity(queries.len());
        for spec in queries {
            // Linear scan on spec equality: batches are small (tens of
            // queries), and PlanKey's 64-bit hash alone must never decide
            // identity.
            match unique_specs.iter().position(|seen| *seen == spec) {
                Some(u) => unique_of.push(u),
                None => {
                    let key = PlanKey::of_spec(spec).with_options(options);
                    plans.push(cache.get_or_compile_keyed(key, spec, options));
                    unique_specs.push(spec);
                    unique_of.push(plans.len() - 1);
                }
            }
        }
        let mut disjunct_base = Vec::with_capacity(plans.len());
        let mut flat: Vec<&cqt_core::CompiledQuery> = Vec::new();
        for plan in &plans {
            disjunct_base.push(flat.len());
            flat.extend(plan.disjuncts().iter());
        }
        let batch_plan = BatchPlan::new(&flat);
        let prune = prune_index.map(|index| {
            let mut union: Vec<String> = plans
                .iter()
                .flat_map(|plan| plan.required_labels().iter().cloned())
                .collect();
            union.sort_unstable();
            union.dedup();
            index.candidates(&union)
        });
        PreparedBatch {
            plans,
            unique_of,
            batch_plan,
            disjunct_base,
            prune,
        }
    }

    /// Number of distinct plans behind the batch's queries.
    pub fn unique_count(&self) -> usize {
        self.plans.len()
    }

    /// Queries that mapped onto an already-compiled plan of the same batch.
    pub fn deduped_queries(&self) -> usize {
        self.unique_of.len() - self.plans.len()
    }

    /// Distinct entries of the cross-query shared-step table.
    pub fn shared_steps(&self) -> usize {
        self.batch_plan.shared_step_count()
    }

    /// Step resolutions that were hash-cons hits across the batch.
    pub fn reused_steps(&self) -> usize {
        self.batch_plan.reused_steps()
    }

    /// Serves every query of the batch from one snapshot of `document`,
    /// appending one [`Answer`] per *original* query (so `answers` lines up
    /// with the `queries` slice passed to [`PreparedBatch::prepare`];
    /// duplicates within the batch share one execution). Returns the number
    /// of evaluator runs actually performed on this document.
    ///
    /// With pruning enabled, each distinct query re-validates the union
    /// posting-list decision against the snapshot's own summary — a
    /// document outside the union survivors falls back to the exact
    /// per-plan [`Plan::prunes`] check, so a pruned answer is provably the
    /// empty answer and fingerprints match the unpruned run bit for bit.
    pub fn execute_document(
        &self,
        document: &Document,
        scratch: &mut BatchScratch,
        answers: &mut Vec<Answer>,
        prune_stats: &mut PruneStats,
    ) -> u64 {
        let snapshot = document.handle().snapshot();
        scratch.begin_document(&self.batch_plan, snapshot.prepared.tree().len());
        self.batch_plan.warm(&snapshot.prepared);
        let mut executions = 0u64;
        let mut unique_answers: Vec<Answer> = Vec::with_capacity(self.plans.len());
        for (u, plan) in self.plans.iter().enumerate() {
            if let Some(survivors) = &self.prune {
                prune_stats.candidates += 1;
                let index_candidate = match survivors {
                    Some(s) => s.contains(document.id()),
                    None => true,
                };
                if should_prune(plan, index_candidate, snapshot.prepared.doc_summary()) {
                    prune_stats.pruned += 1;
                    unique_answers.push(plan.empty_answer());
                    continue;
                }
                prune_stats.survivors += 1;
            }
            let answer = self.execute_unique(u, &snapshot.prepared, scratch);
            executions += 1;
            if self.prune.is_some() && answer == plan.empty_answer() {
                prune_stats.false_positives += 1;
            }
            unique_answers.push(answer);
        }
        answers.extend(self.unique_of.iter().map(|&u| unique_answers[u].clone()));
        executions
    }

    /// Executes distinct plan `u` through the shared-step table, unioning
    /// its disjuncts in exactly the shapes [`Plan::execute`] uses — answer
    /// equality with the one-at-a-time path is what the differential suite
    /// checks.
    fn execute_unique(
        &self,
        u: usize,
        prepared: &cqt_trees::PreparedTree,
        scratch: &mut BatchScratch,
    ) -> Answer {
        let plan = &self.plans[u];
        let base = self.disjunct_base[u];
        let disjuncts = plan.disjuncts();
        match plan.head_arity() {
            0 => {
                let mut found = false;
                for (k, disjunct) in disjuncts.iter().enumerate() {
                    if self
                        .batch_plan
                        .execute(base + k, disjunct, prepared, scratch)
                        == Answer::Boolean(true)
                    {
                        found = true;
                        break;
                    }
                }
                Answer::Boolean(found)
            }
            1 => {
                let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
                for (k, disjunct) in disjuncts.iter().enumerate() {
                    if let Answer::Nodes(more) =
                        self.batch_plan
                            .execute(base + k, disjunct, prepared, scratch)
                    {
                        nodes.extend(more);
                    }
                }
                Answer::Nodes(nodes.into_iter().collect())
            }
            _ => {
                let mut tuples: BTreeSet<Vec<NodeId>> = BTreeSet::new();
                for (k, disjunct) in disjuncts.iter().enumerate() {
                    if let Answer::Tuples(more) =
                        self.batch_plan
                            .execute(base + k, disjunct, prepared, scratch)
                    {
                        tuples.extend(more);
                    }
                }
                Answer::Tuples(tuples.into_iter().collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::Corpus;
    use cqt_trees::parse::parse_term;

    fn corpus() -> Corpus {
        let corpus = Corpus::new(2);
        corpus
            .insert(
                "d0",
                parse_term("R(S(NP(DT, NN), VP(VB, NP(NN))), S(NP(NN), VP(VB)))").unwrap(),
            )
            .unwrap();
        corpus
            .insert("d1", parse_term("R(A(B(C), B), C(B))").unwrap())
            .unwrap();
        corpus
    }

    fn specs() -> Vec<QuerySpec> {
        vec![
            QuerySpec::parse_cq("Q(y) :- S(x), Child(x, y), NP(y).").unwrap(),
            QuerySpec::parse_xpath("//NP | //B").unwrap(),
            // Duplicate of the first — must dedup to one plan.
            QuerySpec::parse_cq("Q(y) :- S(x), Child(x, y), NP(y).").unwrap(),
            QuerySpec::parse_cq("Q() :- A(x), Child(x, y), B(y).").unwrap(),
        ]
    }

    #[test]
    fn flatten_preserves_batch_and_query_order() {
        let workload = BatchWorkload::new(
            vec![
                BatchRequest {
                    queries: specs(),
                    target: FanOut::All,
                },
                BatchRequest {
                    queries: specs()[..2].to_vec(),
                    target: FanOut::One("d1".into()),
                },
            ],
            3,
        );
        assert_eq!(workload.batch_count(), 6);
        assert_eq!(workload.flat_len(), 6);
        assert_eq!(workload.query_count(), 18);
        assert_eq!(workload.flat_base(), vec![0, 4]);
        let flat = workload.flatten();
        assert_eq!(flat.request_count(), 18);
        assert_eq!(flat.requests.len(), 6);
        assert_eq!(flat.requests[1].query, specs()[1]);
        assert_eq!(flat.requests[4].query, specs()[0]);
        assert!(matches!(flat.requests[5].target, FanOut::One(_)));
    }

    #[test]
    fn prepared_batch_dedups_and_matches_plan_execution() {
        let corpus = corpus();
        let cache = PlanCache::new();
        let options = PlanOptions::default();
        let queries = specs();
        let batch = PreparedBatch::prepare(&queries, &cache, &options, None);
        assert_eq!(batch.unique_count(), 3);
        assert_eq!(batch.deduped_queries(), 1);
        assert!(batch.reused_steps() > 0);

        let mut scratch = BatchScratch::new();
        let mut exec = cqt_core::ExecScratch::new();
        for document in corpus.select(&FanOut::All).iter() {
            let mut answers = Vec::new();
            let mut prune = PruneStats::default();
            let executed = batch.execute_document(document, &mut scratch, &mut answers, &mut prune);
            assert_eq!(executed, 3, "one execution per distinct plan");
            assert_eq!(answers.len(), queries.len());
            let snapshot = document.handle().snapshot();
            for (q, spec) in queries.iter().enumerate() {
                let (plan, _) = Plan::compile(spec, &options);
                let expected = plan.execute(&snapshot.prepared, &mut exec);
                assert_eq!(answers[q], expected, "query {q} on {:?}", document.id());
            }
            assert_eq!(prune, PruneStats::default(), "pruning was disabled");
        }
    }

    #[test]
    fn union_pruning_is_answer_exact() {
        let corpus = corpus();
        let cache = PlanCache::new();
        let options = PlanOptions::default();
        let queries = specs();
        let unpruned = PreparedBatch::prepare(&queries, &cache, &options, None);
        let pruned = PreparedBatch::prepare(&queries, &cache, &options, Some(corpus.label_index()));
        let mut scratch = BatchScratch::new();
        for document in corpus.select(&FanOut::All).iter() {
            let mut plain = Vec::new();
            let mut checked = Vec::new();
            let mut stats = PruneStats::default();
            unpruned.execute_document(document, &mut scratch, &mut plain, &mut stats);
            let mut stats = PruneStats::default();
            let executed =
                pruned.execute_document(document, &mut scratch, &mut checked, &mut stats);
            assert_eq!(plain, checked);
            // d0 has no A/B labels and d1 has no S/NP: the union intersection
            // is empty, so every document exact-checks and prunes what it
            // provably cannot answer.
            assert_eq!(stats.candidates, 3);
            assert!(stats.pruned > 0, "{stats:?}");
            assert_eq!(executed, stats.survivors);
        }
    }
}
