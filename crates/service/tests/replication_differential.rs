//! Differential properties of the replication transport: whatever byte
//! the connection dies on, a reconnecting replica must catch up to
//! **exactly** the leader's durable state — and failover must be
//! digest-gated, refusing to promote a replica whose positions do not
//! match the dead leader's durable prefix.
//!
//! The disconnect is simulated the way a disconnect actually lands on a
//! follower: a one-shot proxy relays the leader's replication stream up
//! to an arbitrary byte offset and then drops both sockets, swept across
//! **every frame boundary and mid-frame offset** of the captured stream
//! (mirroring the kill-point sweep of `recovery_differential.rs`, with
//! the torn log replaced by a torn TCP stream). After each cut the
//! replica reconnects to the real leader and must converge; the final
//! answer-level check runs a batched, pruned query workload over both the
//! leader and the replica through real sockets and requires identical
//! fingerprints.

use std::fs;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use cqt_service::net::frame::{write_frame, FRAME_HEADER_LEN};
use cqt_service::net::{
    NetServer, NetServerConfig, Request, Response, WireFanOut, WireLang, WireQuery,
};
use cqt_service::{durable_positions, Corpus, Durability, PromoteError, ReplicaFollower};
use cqt_trees::generate::{random_edit_script, random_tree, EditScriptConfig, RandomTreeConfig};
use cqt_trees::Tree;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_dir(name: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cqt-repl-diff-{}-{name}-{seed}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn base_alphabet() -> Vec<String> {
    ["A", "B", "C", "D", "E"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Generates a random initial tree plus `commits` chained random edit
/// scripts, returning the per-epoch trees of the full in-memory replay
/// (`epochs[e]` is the tree after `e` commits).
fn random_history(
    seed: u64,
    nodes: usize,
    commits: usize,
) -> (Vec<Tree>, Vec<cqt_trees::EditScript>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = random_tree(
        &mut rng,
        &RandomTreeConfig {
            nodes,
            alphabet: base_alphabet(),
            ..RandomTreeConfig::default()
        },
    );
    let script_config = EditScriptConfig {
        edits: 2,
        alphabet: base_alphabet(),
        ..EditScriptConfig::default()
    };
    let mut epochs = vec![initial];
    let mut scripts = Vec::new();
    for _ in 0..commits {
        let script = random_edit_script(&mut rng, epochs.last().unwrap(), &script_config);
        let (next, _) = script.apply_to(epochs.last().unwrap()).unwrap();
        epochs.push(next);
        scripts.push(script);
    }
    (epochs, scripts)
}

/// Connects directly to the leader and captures the raw bytes of one
/// complete cold replication stream (everything through `ReplDone`),
/// returning the bytes and the offset at which each whole frame —
/// header included — ends. These offsets enumerate the cut points.
fn capture_stream(addr: SocketAddr) -> (Vec<u8>, Vec<usize>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let subscribe = Request::Replicate {
        id: 9,
        positions: Vec::new(),
    };
    write_frame(&mut stream, &subscribe.encode()).unwrap();
    let mut bytes = Vec::new();
    let mut frame_ends = Vec::new();
    loop {
        let mut header = [0u8; FRAME_HEADER_LEN];
        stream.read_exact(&mut header).unwrap();
        let len = u32::from_be_bytes(header) as usize;
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).unwrap();
        bytes.extend_from_slice(&header);
        bytes.extend_from_slice(&payload);
        frame_ends.push(bytes.len());
        if matches!(Response::decode(&payload), Ok(Response::ReplDone { .. })) {
            return (bytes, frame_ends);
        }
    }
}

/// One-shot truncating proxy: accepts a single connection, forwards its
/// first request frame upstream, relays at most `limit` bytes of the
/// response back, then drops both sockets — a disconnect at an exact
/// byte offset of the replication stream.
fn truncating_proxy(upstream: SocketAddr, limit: usize) -> (SocketAddr, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = thread::spawn(move || {
        let Ok((mut client, _)) = listener.accept() else {
            return;
        };
        let Ok(mut up) = TcpStream::connect(upstream) else {
            return;
        };
        let mut header = [0u8; FRAME_HEADER_LEN];
        if client.read_exact(&mut header).is_err() {
            return;
        }
        let len = u32::from_be_bytes(header) as usize;
        let mut payload = vec![0u8; len];
        if client.read_exact(&mut payload).is_err() {
            return;
        }
        if up
            .write_all(&header)
            .and_then(|()| up.write_all(&payload))
            .is_err()
        {
            return;
        }
        let mut remaining = limit;
        let mut buf = [0u8; 512];
        while remaining > 0 {
            let want = buf.len().min(remaining);
            match up.read(&mut buf[..want]) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if client.write_all(&buf[..n]).is_err() {
                        break;
                    }
                    remaining -= n;
                }
            }
        }
        let _ = client.shutdown(Shutdown::Both);
        let _ = up.shutdown(Shutdown::Both);
    });
    (addr, handle)
}

/// The answer-level oracle: one batched, pruned scatter–gather over a
/// real socket, returning (documents hit, per-query fingerprints).
fn batch_fingerprints(addr: SocketAddr, queries: &[(WireLang, &str, u64)]) -> (u32, Vec<u64>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = Request::Batch {
        id: 77,
        fanout: WireFanOut::All,
        queries: queries
            .iter()
            .map(|(lang, text, fp_key)| WireQuery {
                lang: *lang,
                text: (*text).to_string(),
                fp_key: *fp_key,
            })
            .collect(),
    };
    write_frame(&mut stream, &request.encode()).unwrap();
    let mut header = [0u8; FRAME_HEADER_LEN];
    stream.read_exact(&mut header).unwrap();
    let len = u32::from_be_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::BatchAnswer {
            docs, fingerprints, ..
        } => (docs, fingerprints),
        other => panic!("expected a batch answer, got {other:?}"),
    }
}

/// The query mix for the answer-level checks: CQ and XPath over the
/// generator's alphabet, with distinct fingerprint keys.
fn oracle_queries() -> [(WireLang, &'static str, u64); 3] {
    [
        (WireLang::Cq, "Q(y) :- A(x), Child+(x, y), B(y).", 11),
        (WireLang::XPath, "//B | //C", 23),
        (WireLang::Cq, "Q(x) :- E(x).", 37),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The disconnect sweep: cut the replication stream at every frame
    /// boundary and a mid-frame offset inside every frame; after
    /// reconnect + catch-up the replica must hold exactly the leader's
    /// durable state, and a batched, pruned query workload over real
    /// sockets must fingerprint identically on both sides.
    #[test]
    fn replica_converges_from_every_disconnect_point(
        seed in 0u64..1 << 32,
        nodes in 4usize..16,
        commits in 1usize..5,
        snapshot_every in 0u64..3,
        // Fraction through the frame at which the mid-frame cut lands.
        cut_frac in 1usize..97,
    ) {
        let dir = temp_dir("cut", seed);
        let (epochs_a, scripts_a) = random_history(seed, nodes, commits);
        let (epochs_b, scripts_b) = random_history(seed ^ 0x9e37, nodes, commits);
        let (corpus, _) = Corpus::open_durable(
            2,
            Durability::Wal { dir: dir.clone(), snapshot_every },
        )
        .unwrap();
        let corpus = Arc::new(corpus);
        corpus.insert("doc-a", epochs_a[0].clone()).unwrap();
        corpus
            .insert_tagged("doc-b", &["hot"], epochs_b[0].clone())
            .unwrap();
        for script in &scripts_a {
            corpus.commit(&"doc-a".into(), script).unwrap();
        }
        for script in &scripts_b {
            corpus.commit(&"doc-b".into(), script).unwrap();
        }
        let server = NetServer::start(Arc::clone(&corpus), NetServerConfig::default()).unwrap();

        // Enumerate the cuts from one captured full stream: zero bytes,
        // every frame boundary, and one mid-frame offset per frame (for
        // small fractions the cut lands inside the 4-byte header).
        let (stream_bytes, frame_ends) = capture_stream(server.addr());
        let mut cuts = vec![0usize];
        cuts.extend_from_slice(&frame_ends);
        let mut frame_start = 0usize;
        for &end in &frame_ends {
            let span = end - frame_start;
            cuts.push(frame_start + 1 + (cut_frac * (span - 1)) / 100);
            frame_start = end;
        }
        cuts.sort_unstable();
        cuts.dedup();

        let expect_a = epochs_a[commits].structure_digest();
        let expect_b = epochs_b[commits].structure_digest();
        for cut in cuts {
            let (proxy_addr, proxy) = truncating_proxy(server.addr(), cut);
            let mut replica = ReplicaFollower::new(proxy_addr, 2);
            // Torn at `cut`: an error for every cut short of the full
            // stream, a clean finish for the final boundary — both fine.
            let _ = replica.sync();
            proxy.join().unwrap();
            replica.retarget(server.addr());
            let caught_up = replica.sync_with_backoff(3, Duration::from_millis(1));
            prop_assert!(
                caught_up.is_ok(),
                "catch-up after a cut at byte {} failed: {:?}",
                cut,
                caught_up
            );
            let snap_a = replica.corpus().snapshot(&"doc-a".into()).unwrap();
            prop_assert_eq!(snap_a.epoch, commits as u64, "doc-a epoch after cut {}", cut);
            prop_assert_eq!(
                snap_a.prepared.tree().structure_digest(),
                expect_a,
                "doc-a diverged after a cut at byte {}",
                cut
            );
            let snap_b = replica.corpus().snapshot(&"doc-b".into()).unwrap();
            prop_assert_eq!(snap_b.epoch, commits as u64, "doc-b epoch after cut {}", cut);
            prop_assert_eq!(
                snap_b.prepared.tree().structure_digest(),
                expect_b,
                "doc-b diverged after a cut at byte {}",
                cut
            );
            // A caught-up replica re-subscribes to a no-op stream.
            let idle = replica.sync().unwrap();
            prop_assert_eq!((idle.records_applied, idle.snapshots_loaded), (0, 0));
        }

        // The leader advances while a replica is down: a replica torn
        // mid-stream reconnects after new commits and must land on the
        // new tip, not the one it first subscribed to.
        let mid_cut = stream_bytes.len() / 2;
        let (proxy_addr, proxy) = truncating_proxy(server.addr(), mid_cut);
        let mut replica = ReplicaFollower::new(proxy_addr, 2);
        let _ = replica.sync();
        proxy.join().unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let extra = random_edit_script(
            &mut rng,
            epochs_a.last().unwrap(),
            &EditScriptConfig { alphabet: base_alphabet(), ..EditScriptConfig::default() },
        );
        let (tip_tree, _) = extra.apply_to(epochs_a.last().unwrap()).unwrap();
        corpus.commit(&"doc-a".into(), &extra).unwrap();
        replica.retarget(server.addr());
        replica
            .sync_with_backoff(3, Duration::from_millis(1))
            .unwrap();
        let snap_a = replica.corpus().snapshot(&"doc-a".into()).unwrap();
        prop_assert_eq!(snap_a.epoch, commits as u64 + 1);
        prop_assert_eq!(
            snap_a.prepared.tree().structure_digest(),
            tip_tree.structure_digest()
        );

        // Answer-level equivalence with pruning and batching enabled on
        // both sides: the replica's corpus serves behind its own socket
        // front end and must fingerprint identically to the leader.
        let replica_server =
            NetServer::start(replica.corpus(), NetServerConfig::default()).unwrap();
        let queries = oracle_queries();
        let (leader_docs, leader_fps) = batch_fingerprints(server.addr(), &queries);
        let (replica_docs, replica_fps) = batch_fingerprints(replica_server.addr(), &queries);
        prop_assert_eq!(leader_docs, 2);
        prop_assert_eq!(replica_docs, 2);
        prop_assert_eq!(leader_fps, replica_fps);
        replica_server.shutdown();
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Deterministic failover: `promote` refuses a replica whose digest chain
/// does not match the dead leader's durable prefix and accepts one that
/// does — which then serves oracle-checked reads and accepts writes at
/// the recovered epoch.
#[test]
fn promote_is_digest_gated_and_serves_oracle_checked_reads() {
    let dir = temp_dir("promote", 11);
    let (epochs_a, scripts_a) = random_history(11, 14, 4);
    let (epochs_b, scripts_b) = random_history(12, 10, 2);
    let (corpus, _) = Corpus::open_durable(
        2,
        Durability::Wal {
            dir: dir.clone(),
            snapshot_every: 2,
        },
    )
    .unwrap();
    let corpus = Arc::new(corpus);
    corpus.insert("doc-a", epochs_a[0].clone()).unwrap();
    corpus.insert("doc-b", epochs_b[0].clone()).unwrap();
    for script in &scripts_a[..2] {
        corpus.commit(&"doc-a".into(), script).unwrap();
    }
    for script in &scripts_b {
        corpus.commit(&"doc-b".into(), script).unwrap();
    }
    let server = NetServer::start(Arc::clone(&corpus), NetServerConfig::default()).unwrap();

    // `stale` stops syncing here; the leader keeps committing, so its
    // final position on doc-a is two epochs behind the durable prefix.
    let stale = ReplicaFollower::new(server.addr(), 2);
    stale.sync().unwrap();
    for script in &scripts_a[2..] {
        corpus.commit(&"doc-a".into(), script).unwrap();
    }
    let current = ReplicaFollower::new(server.addr(), 2);
    current.sync().unwrap();
    // `empty` never synced at all.
    let empty = ReplicaFollower::new(server.addr(), 2);

    // The leader dies.
    server.shutdown();
    drop(corpus);
    let durable = durable_positions(&dir).unwrap();
    assert_eq!(durable.len(), 2);

    match empty.promote(&durable) {
        Err(PromoteError::MissingDocument(doc_id)) => assert_eq!(doc_id, "doc-a"),
        other => panic!("expected MissingDocument, got {other:?}"),
    }
    match stale.promote(&durable) {
        Err(PromoteError::Diverged {
            doc_id,
            expected_epoch,
            found_epoch,
            ..
        }) => {
            assert_eq!(doc_id, "doc-a");
            assert_eq!(expected_epoch, 4);
            assert_eq!(found_epoch, 2);
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
    let promoted = current.promote(&durable).unwrap();

    // Oracle 1: crash recovery of the leader's directory must agree with
    // the promoted replica document by document.
    let (recovered, report) = Corpus::open_durable(
        2,
        Durability::Wal {
            dir: dir.clone(),
            snapshot_every: 2,
        },
    )
    .unwrap();
    assert_eq!(report.documents.len(), 2);
    for id in ["doc-a", "doc-b"] {
        let promoted_snap = promoted.snapshot(&id.into()).unwrap();
        let recovered_snap = recovered.snapshot(&id.into()).unwrap();
        assert_eq!(promoted_snap.epoch, recovered_snap.epoch, "{id} epoch");
        assert_eq!(
            promoted_snap.prepared.tree().structure_digest(),
            recovered_snap.prepared.tree().structure_digest(),
            "{id} digest"
        );
    }

    // Oracle 2: answers. Both corpora behind real socket front ends with
    // pruning and batching on; identical fingerprints or the failover
    // changed what readers see.
    let promoted_server =
        NetServer::start(Arc::clone(&promoted), NetServerConfig::default()).unwrap();
    let oracle_server = NetServer::start(Arc::new(recovered), NetServerConfig::default()).unwrap();
    let queries = oracle_queries();
    let (promoted_docs, promoted_fps) = batch_fingerprints(promoted_server.addr(), &queries);
    let (oracle_docs, oracle_fps) = batch_fingerprints(oracle_server.addr(), &queries);
    assert_eq!(promoted_docs, 2);
    assert_eq!(oracle_docs, 2);
    assert_eq!(promoted_fps, oracle_fps);
    promoted_server.shutdown();
    oracle_server.shutdown();

    // The promoted corpus is open for writes at the recovered epoch.
    let mut rng = StdRng::seed_from_u64(99);
    let post = random_edit_script(
        &mut rng,
        epochs_a.last().unwrap(),
        &EditScriptConfig {
            alphabet: base_alphabet(),
            ..EditScriptConfig::default()
        },
    );
    let report = promoted.commit(&"doc-a".into(), &post).unwrap();
    assert_eq!(report.epoch, 5);
    let (expected, _) = post.apply_to(epochs_a.last().unwrap()).unwrap();
    assert_eq!(
        promoted
            .snapshot(&"doc-a".into())
            .unwrap()
            .prepared
            .tree()
            .structure_digest(),
        expected.structure_digest()
    );
    let _ = fs::remove_dir_all(&dir);
}
