//! Races between a leader's snapshot rotation and a [`Follower`] tailing
//! its log directory. Rotation is three steps on the leader (write the
//! new snapshot, truncate the log, delete superseded snapshots), and a
//! follower's poll can land between any two of them; these tests pin the
//! follower's behavior in each window:
//!
//! * a log truncated past the follower's position falls back to a
//!   snapshot reload, never an error;
//! * a directory whose snapshots are all transiently unreadable (the
//!   rotation window) is skipped and retried, never treated as removed
//!   (the regression test for a bug where a transient `NotFound` during
//!   rotation dropped the document — destroying the follower's replay
//!   position — instead of deferring to the next poll);
//! * a poller hammering a leader that rotates on **every** commit
//!   converges without ever spuriously removing a document.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cqt_service::{Corpus, Durability, Follower, FollowerProgress};
use cqt_trees::generate::{random_edit_script, random_tree, EditScriptConfig, RandomTreeConfig};
use cqt_trees::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_dir(name: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cqt-follower-races-{}-{name}-{seed}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn base_alphabet() -> Vec<String> {
    ["A", "B", "C", "D", "E"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Generates a random initial tree plus `commits` chained random edit
/// scripts, returning the per-epoch trees of the full in-memory replay.
fn random_history(
    seed: u64,
    nodes: usize,
    commits: usize,
) -> (Vec<Tree>, Vec<cqt_trees::EditScript>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = random_tree(
        &mut rng,
        &RandomTreeConfig {
            nodes,
            alphabet: base_alphabet(),
            ..RandomTreeConfig::default()
        },
    );
    let script_config = EditScriptConfig {
        edits: 2,
        alphabet: base_alphabet(),
        ..EditScriptConfig::default()
    };
    let mut epochs = vec![initial];
    let mut scripts = Vec::new();
    for _ in 0..commits {
        let script = random_edit_script(&mut rng, epochs.last().unwrap(), &script_config);
        let (next, _) = script.apply_to(epochs.last().unwrap()).unwrap();
        epochs.push(next);
        scripts.push(script);
    }
    (epochs, scripts)
}

/// A snapshot is written and the log truncated between two polls: the
/// follower's position falls behind the log's first record, so the
/// incremental path cannot apply — it must reload from the snapshot and
/// then resume incrementally on the next poll.
#[test]
fn truncation_between_polls_falls_back_to_snapshot_reload() {
    let dir = temp_dir("truncate", 21);
    let (epochs, scripts) = random_history(21, 12, 5);
    let (corpus, _) = Corpus::open_durable(
        2,
        Durability::Wal {
            dir: dir.clone(),
            snapshot_every: 3,
        },
    )
    .unwrap();
    corpus.insert("doc", epochs[0].clone()).unwrap();
    let follower = Follower::open(&dir, 2).unwrap();

    corpus.commit(&"doc".into(), &scripts[0]).unwrap();
    let progress = follower.poll().unwrap();
    assert_eq!(progress.records_applied, 1);

    // Epoch 3 hits the cadence: snapshot written, log truncated. Epoch 4
    // then appends past the follower's position — the log now starts at
    // a record the follower (at epoch 1) cannot chain to.
    corpus.commit(&"doc".into(), &scripts[1]).unwrap();
    corpus.commit(&"doc".into(), &scripts[2]).unwrap();
    corpus.commit(&"doc".into(), &scripts[3]).unwrap();
    let progress = follower.poll().unwrap();
    assert_eq!(
        progress,
        FollowerProgress {
            records_applied: 0,
            documents_loaded: 1,
            documents_removed: 0,
        },
        "a truncation gap must reload from the snapshot, not error"
    );
    let got = follower.corpus().snapshot(&"doc".into()).unwrap();
    assert_eq!(got.epoch, 4);
    assert_eq!(
        got.prepared.tree().structure_digest(),
        epochs[4].structure_digest()
    );

    // The reload re-anchored the replay position: the next commit applies
    // incrementally again (the log still holds the already-covered epoch-4
    // record, which must be skipped, not re-applied).
    corpus.commit(&"doc".into(), &scripts[4]).unwrap();
    let progress = follower.poll().unwrap();
    assert_eq!(progress.records_applied, 1);
    assert_eq!(progress.documents_loaded, 0);
    let got = follower.corpus().snapshot(&"doc".into()).unwrap();
    assert_eq!(
        got.prepared.tree().structure_digest(),
        epochs[5].structure_digest()
    );
    let _ = fs::remove_dir_all(&dir);
}

/// The mid-rotation window where no snapshot file is readable: the
/// follower must keep the document and its position untouched and
/// converge once the snapshot is back — never error, never remove.
#[test]
fn missing_snapshots_during_rotation_defer_rather_than_remove() {
    let dir = temp_dir("nosnap", 22);
    let (epochs, scripts) = random_history(22, 12, 3);
    let (corpus, _) = Corpus::open_durable(
        2,
        Durability::Wal {
            dir: dir.clone(),
            snapshot_every: 2,
        },
    )
    .unwrap();
    corpus.insert("doc", epochs[0].clone()).unwrap();
    // Commit to epoch 2: snapshot-2 written, log truncated to the bare
    // header, snapshot-0 deleted.
    corpus.commit(&"doc".into(), &scripts[0]).unwrap();
    corpus.commit(&"doc".into(), &scripts[1]).unwrap();
    let follower = Follower::open(&dir, 2).unwrap();
    assert_eq!(follower.corpus().snapshot(&"doc".into()).unwrap().epoch, 2);

    // Hide the only snapshot — exactly what a poll sees if it lands
    // while the leader is renaming the next snapshot into place.
    let snapshot = dir.join("doc").join("snapshot-00000000000000000002.snap");
    let parked = dir.join("parked.snap");
    fs::rename(&snapshot, &parked).unwrap();
    let progress = follower.poll().unwrap();
    assert_eq!(progress, FollowerProgress::default());
    assert_eq!(follower.corpus().len(), 1, "the document must survive");
    assert_eq!(
        follower.corpus().snapshot(&"doc".into()).unwrap().epoch,
        2,
        "the replay position must survive"
    );

    // Snapshot back: the next commit applies incrementally, proving the
    // position was deferred, not rebuilt.
    fs::rename(&parked, &snapshot).unwrap();
    corpus.commit(&"doc".into(), &scripts[2]).unwrap();
    let progress = follower.poll().unwrap();
    assert_eq!(progress.records_applied, 1);
    assert_eq!(progress.documents_loaded, 0);
    assert_eq!(
        follower
            .corpus()
            .snapshot(&"doc".into())
            .unwrap()
            .prepared
            .tree()
            .structure_digest(),
        epochs[3].structure_digest()
    );
    let _ = fs::remove_dir_all(&dir);
}

/// The regression test for removal-on-transient-`NotFound`: a document
/// directory that momentarily stops being a directory (or is missed by
/// one listing) must not be treated as a leader-side removal. Only a
/// confirmed `NotFound` on a direct probe may drop the document.
#[test]
fn transient_directory_anomalies_are_not_removals() {
    let dir = temp_dir("anomaly", 23);
    let (epochs, scripts) = random_history(23, 12, 2);
    let (corpus, _) = Corpus::open_durable(
        2,
        Durability::Wal {
            dir: dir.clone(),
            snapshot_every: 0,
        },
    )
    .unwrap();
    corpus.insert("alpha", epochs[0].clone()).unwrap();
    let follower = Follower::open(&dir, 2).unwrap();
    corpus.commit(&"alpha".into(), &scripts[0]).unwrap();
    assert_eq!(follower.poll().unwrap().records_applied, 1);

    // The anomaly: the path exists but is not a directory, so the
    // listing skips it — the old code concluded "removed" from exactly
    // this observation and dropped the document and its position.
    let doc_dir = dir.join("alpha");
    let parked = std::env::temp_dir().join(format!(
        "cqt-follower-races-{}-anomaly-parked",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&parked);
    fs::rename(&doc_dir, &parked).unwrap();
    fs::write(&doc_dir, b"rotation debris").unwrap();
    let progress = follower.poll().unwrap();
    assert_eq!(progress.documents_removed, 0, "no removal on a live path");
    assert_eq!(follower.corpus().len(), 1);
    assert!(follower.corpus().get(&"alpha".into()).is_some());

    // Restore the directory: the next commit applies incrementally —
    // the replay position survived the anomaly.
    fs::remove_file(&doc_dir).unwrap();
    fs::rename(&parked, &doc_dir).unwrap();
    corpus.commit(&"alpha".into(), &scripts[1]).unwrap();
    let progress = follower.poll().unwrap();
    assert_eq!(progress.records_applied, 1);
    assert_eq!(progress.documents_loaded, 0);
    assert_eq!(
        follower
            .corpus()
            .snapshot(&"alpha".into())
            .unwrap()
            .prepared
            .tree()
            .structure_digest(),
        epochs[2].structure_digest()
    );

    // A genuine removal — directory confirmed gone — still converges.
    corpus.remove(&"alpha".into()).unwrap();
    let progress = follower.poll().unwrap();
    assert_eq!(progress.documents_removed, 1);
    assert_eq!(follower.corpus().len(), 0);
    let _ = fs::remove_dir_all(&dir);
}

/// The hammer: a leader that snapshots and truncates on **every** commit
/// while a poller runs flat out. Individual polls may observe a
/// snapshot/log pair from two different rotation instants and return a
/// typed error for that poll; what must hold is that the poller (a)
/// never spuriously removes the document and (b) converges to the
/// leader's final digest once the writer stops.
#[test]
fn poller_survives_continuous_rotation() {
    let commits = 30;
    let dir = temp_dir("hammer", 31);
    let (epochs, scripts) = random_history(31, 10, commits);
    let (corpus, _) = Corpus::open_durable(
        2,
        Durability::Wal {
            dir: dir.clone(),
            snapshot_every: 1,
        },
    )
    .unwrap();
    let corpus = Arc::new(corpus);
    corpus.insert("doc", epochs[0].clone()).unwrap();
    let follower = Follower::open(&dir, 2).unwrap();

    let writer = {
        let corpus = Arc::clone(&corpus);
        std::thread::spawn(move || {
            for script in &scripts {
                corpus.commit(&"doc".into(), script).unwrap();
            }
        })
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut removed = 0u64;
    loop {
        if let Ok(progress) = follower.poll() {
            removed += progress.documents_removed;
            if let Some(snapshot) = follower.corpus().snapshot(&"doc".into()) {
                if snapshot.epoch == commits as u64 {
                    break;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "poller failed to converge within the deadline"
        );
        std::thread::yield_now();
    }
    writer.join().unwrap();
    // Quiescent now: one more poll must be a clean no-op.
    let progress = follower.poll().unwrap();
    assert_eq!(progress, FollowerProgress::default());
    assert_eq!(removed, 0, "rotation churn must never look like removal");
    let got = follower.corpus().snapshot(&"doc".into()).unwrap();
    assert_eq!(got.epoch, commits as u64);
    assert_eq!(
        got.prepared.tree().structure_digest(),
        epochs[commits].structure_digest()
    );
    let _ = fs::remove_dir_all(&dir);
}
