//! Differential properties of the batched execution path: a
//! [`ServiceRunner::run_batched`] run must be **answer-fingerprint
//! identical** to [`ServiceRunner::run_corpus`] on the flattened workload —
//! on random corpora at every vocabulary extreme, with pruning on and off,
//! and across arbitrary committed edit scripts.
//!
//! Batching changes *how much work* is done (whole-query dedup, the
//! hash-consed shared-step table, union-label pruning), never *which
//! answers* come back: the fingerprints are keyed per (query, document)
//! position exactly like the flattened one-at-a-time run, so equality is
//! bit-for-bit over every answer the batch produced.

use cqt_core::BatchScratch;
use cqt_service::{
    BatchRequest, BatchWorkload, Corpus, CorpusWorkload, FanOut, PlanCache, PlanOptions,
    PreparedBatch, PruneStats, QuerySpec, ServiceConfig, ServiceRunner,
};
use cqt_trees::generate::{
    document_corpus, random_edit_script, DocumentCorpusConfig, EditScriptConfig, LabelVocabulary,
};
use cqt_trees::parse::parse_term;
use cqt_trees::Tree;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BASE_ALPHABET: [&str; 4] = ["A", "B", "C", "D"];

fn base_alphabet() -> Vec<String> {
    BASE_ALPHABET.iter().map(|s| s.to_string()).collect()
}

/// Every label a corpus generated with `distinct` templates could carry
/// (see `prune_differential.rs`): queries drawn from this pool cover
/// hit-everything, hit-one-family and hit-nothing selectivities.
fn label_pool(distinct: usize) -> Vec<String> {
    let mut pool = base_alphabet();
    for t in 0..distinct {
        for label in BASE_ALPHABET {
            pool.push(format!("T{t}_{label}"));
        }
    }
    pool
}

fn corpus_of(trees: Vec<Tree>, shards: usize) -> Corpus {
    let corpus = Corpus::new(shards);
    for (i, tree) in trees.into_iter().enumerate() {
        corpus.insert(format!("doc-{i:03}"), tree).unwrap();
    }
    corpus
}

/// Runs `workload` batched and one-at-a-time (on its flattening), with
/// pruning on and off, asserting the fingerprints agree in all four runs.
fn assert_batched_matches_flat(corpus: &Corpus, workload: &BatchWorkload) {
    let flat: CorpusWorkload = workload.flatten();
    for prune in [true, false] {
        let config = ServiceConfig::with_threads(2).with_prune(prune);
        let batched = ServiceRunner::new(config.clone()).run_batched(corpus, workload);
        let one_at_a_time = ServiceRunner::new(config).run_corpus(corpus, &flat);
        assert_eq!(
            batched.answer_fingerprint, one_at_a_time.answer_fingerprint,
            "batched and flattened runs disagree (prune={prune})"
        );
        assert_eq!(
            batched.queries, one_at_a_time.requests,
            "a batch run answers exactly the flattened request count"
        );
        assert_eq!(
            batched.prune.candidates,
            batched.prune.pruned + batched.prune.survivors,
            "every candidate is either pruned or survives"
        );
        if !prune {
            assert_eq!(batched.prune, PruneStats::default());
        }
        assert!(
            batched.doc_executions <= batched.doc_answers,
            "dedup and pruning can only save executions, never invent them"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random corpora at every vocabulary extreme, random batch shapes and
    /// fan-outs: batched digests equal one-at-a-time digests.
    #[test]
    fn batched_runs_match_flattened_on_random_corpora(
        seed in 0u64..1 << 32,
        vocab in 0usize..3,
        documents in 1usize..8,
        distinct in 1usize..4,
        batches in proptest::collection::vec(
            (0usize..3, proptest::collection::vec((0usize..64, 0usize..64), 1..7)),
            1..4,
        ),
    ) {
        let vocabulary = [
            LabelVocabulary::Shared,
            LabelVocabulary::Overlapping,
            LabelVocabulary::Disjoint,
        ][vocab];
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = document_corpus(
            &mut rng,
            &DocumentCorpusConfig {
                documents,
                distinct,
                nodes_per_document: 24,
                alphabet: base_alphabet(),
                vocabulary,
            },
        );
        let corpus = corpus_of(trees, 3);
        let pool = label_pool(distinct);
        let batches: Vec<BatchRequest> = batches
            .iter()
            .map(|(fanout, picks)| BatchRequest {
                queries: picks
                    .iter()
                    .map(|&(a, b)| {
                        let l1 = &pool[a % pool.len()];
                        let l2 = &pool[b % pool.len()];
                        QuerySpec::parse_cq(&format!(
                            "Q(y) :- {l1}(x), Child(x, y), {l2}(y)."
                        ))
                        .unwrap()
                    })
                    .collect(),
                target: match fanout {
                    0 => FanOut::All,
                    1 => FanOut::One("doc-000".into()),
                    _ => FanOut::One("missing".into()),
                },
            })
            .collect();
        let workload = BatchWorkload::new(batches, 2);
        assert_batched_matches_flat(&corpus, &workload);
    }

    /// Random edit scripts committed between quiesced runs: the batched
    /// path agrees with the flattened path on every epoch the corpus
    /// passes through.
    #[test]
    fn batched_runs_match_flattened_across_random_edit_scripts(
        seed in 0u64..1 << 32,
        rounds in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = document_corpus(
            &mut rng,
            &DocumentCorpusConfig {
                documents: 4,
                distinct: 3,
                nodes_per_document: 16,
                alphabet: base_alphabet(),
                vocabulary: LabelVocabulary::Overlapping,
            },
        );
        let corpus = corpus_of(trees, 2);
        let pool = label_pool(3);
        // One batch mixing point-label probes (some of which dedup) with a
        // chain query, fanned out to every document.
        let mut queries: Vec<QuerySpec> = pool
            .iter()
            .step_by(3)
            .map(|label| QuerySpec::parse_cq(&format!("Q(x) :- {label}(x).")).unwrap())
            .collect();
        queries.push(queries[0].clone());
        queries.push(QuerySpec::parse_cq("Q(y) :- A(x), Child(x, y), B(y).").unwrap());
        let workload = BatchWorkload::new(
            vec![BatchRequest {
                queries,
                target: FanOut::All,
            }],
            1,
        );
        let script_config = EditScriptConfig {
            edits: 3,
            // Prefixed labels move documents in and out of the queried
            // posting lists, not just around inside them.
            alphabet: pool.clone(),
            ..EditScriptConfig::default()
        };
        assert_batched_matches_flat(&corpus, &workload);
        for round in 0..rounds {
            let id = format!("doc-{:03}", round % 4);
            let tree = {
                let document = corpus.get(&id.clone().into()).unwrap();
                let snapshot = document.handle().snapshot();
                snapshot.prepared.tree().clone()
            };
            let script = random_edit_script(&mut rng, &tree, &script_config);
            corpus.commit(&id.into(), &script).unwrap();
            assert_batched_matches_flat(&corpus, &workload);
        }
    }
}

/// The shared-step contract made observable in the prepared tree's own
/// cache counters: executing a batch of k kindred queries builds exactly
/// the label sets the *first* query builds — the remaining k−1 queries ride
/// the shared-step table and the per-document warm pass, adding zero
/// builds. Materialized axis relations are never forced by the batched
/// compiled path at all.
#[test]
fn batched_kindred_queries_keep_tree_cache_counters_flat() {
    // Four distinct specs (no whole-query dedup) over the same A/B labels
    // and the same Child chain.
    let kindred = [
        "Q(y) :- A(x), Child(x, y), B(y).",
        "Q(x) :- A(x), Child(x, y), B(y).",
        "Q() :- A(x), Child(x, y), B(y).",
        "Q(x, y) :- A(x), Child(x, y), B(y).",
    ];
    let builds_after = |texts: &[&str]| {
        let corpus = Corpus::new(1);
        corpus
            .insert("d", parse_term("R(A(B(C), B), A(C(B)))").unwrap())
            .unwrap();
        let specs: Vec<QuerySpec> = texts
            .iter()
            .map(|t| QuerySpec::parse_cq(t).unwrap())
            .collect();
        let batch =
            PreparedBatch::prepare(&specs, &PlanCache::new(), &PlanOptions::default(), None);
        assert_eq!(batch.unique_count(), texts.len(), "no whole-query dedup");
        let document = corpus.get(&"d".into()).unwrap();
        let mut scratch = BatchScratch::new();
        let mut answers = Vec::new();
        let mut prune = PruneStats::default();
        let executions = batch.execute_document(&document, &mut scratch, &mut answers, &mut prune);
        assert_eq!(executions, texts.len() as u64);
        assert_eq!(answers.len(), texts.len());
        let snapshot = document.handle().snapshot();
        (
            snapshot.prepared.label_set_builds(),
            snapshot.prepared.relation_builds(),
            scratch.step_hits(),
        )
    };
    let (labels_one, relations_one, _) = builds_after(&kindred[..1]);
    let (labels_all, relations_all, hits_all) = builds_after(&kindred);
    assert_eq!(
        labels_all, labels_one,
        "queries after the first must not build any new label sets"
    );
    assert_eq!(
        relations_all, relations_one,
        "batched execution must not force extra materialized relations"
    );
    assert!(
        hits_all > 0,
        "the kindred chains actually shared step evaluations"
    );
}
