//! Property tests for the network wire format: the frame codec
//! ([`cqt_service::net::frame`]) and the request/response protocol
//! ([`cqt_service::net::protocol`]).
//!
//! Three properties the serving layer relies on:
//!
//! 1. **Round-trip** — every representable request and response decodes
//!    back to itself after encoding (the client and server agree on the
//!    wire format by construction, not by luck).
//! 2. **Rejection without panic** — arbitrary garbage, truncated payloads
//!    and oversized frame headers produce `Err`, never a panic or an
//!    out-of-bounds allocation (a malicious or broken peer cannot take a
//!    connection thread down).
//! 3. **Reassembly across split writes** — a frame stream chopped at
//!    arbitrary byte boundaries (as TCP is free to do) reassembles into
//!    exactly the original frame sequence.

use cqt_service::net::frame::{FrameBuffer, FrameError};
use cqt_service::net::protocol::{Request, Response, WireFanOut, WireLang, WirePosition};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::Index;

/// Strategy for short ASCII strings (query texts, doc ids, error messages).
fn wire_string() -> impl Strategy<Value = String> {
    vec(0u8..96, 0..24usize).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| char::from(b' ' + (b % 95)))
            .collect()
    })
}

/// Strategy covering every request variant.
fn arb_request() -> impl Strategy<Value = Request> {
    (
        (0..4usize, proptest::any::<Index>(), wire_string()),
        (
            0..3usize,
            wire_string(),
            proptest::any::<Index>(),
            proptest::any::<bool>(),
        ),
        vec(
            (
                wire_string(),
                proptest::any::<Index>(),
                proptest::any::<Index>(),
            ),
            0..4usize,
        ),
    )
        .prop_map(
            |((variant, id, text), (fanout, target, fp, xpath), positions)| {
                let id = id.index(usize::MAX) as u64;
                let fp_key = fp.index(usize::MAX) as u64;
                match variant {
                    0 => Request::Query {
                        id,
                        lang: if xpath { WireLang::XPath } else { WireLang::Cq },
                        text,
                        fanout: match fanout {
                            0 => WireFanOut::All,
                            1 => WireFanOut::Doc(target),
                            _ => WireFanOut::Tag(target),
                        },
                        fp_key,
                    },
                    1 => Request::Ping { id },
                    2 => Request::Stats { id },
                    _ => Request::Replicate {
                        id,
                        positions: positions
                            .into_iter()
                            .map(|(doc_id, epoch, digest)| WirePosition {
                                doc_id,
                                epoch: epoch.index(usize::MAX) as u64,
                                digest: digest.index(usize::MAX) as u64,
                            })
                            .collect(),
                    },
                }
            },
        )
}

/// Strategy covering every response variant.
fn arb_response() -> impl Strategy<Value = Response> {
    (
        (0..8usize, proptest::any::<Index>()),
        (proptest::any::<Index>(), proptest::any::<Index>()),
        (0..u32::MAX, 0..u32::MAX, wire_string()),
        (vec(wire_string(), 0..3usize), vec(0u8..=255, 0..24usize)),
    )
        .prop_map(
            |((variant, id), (a, b), (x, y, message), (strings, bytes))| {
                let id = id.index(usize::MAX) as u64;
                let (a, b) = (a.index(usize::MAX) as u64, b.index(usize::MAX) as u64);
                match variant {
                    0 => Response::Answer {
                        id,
                        fingerprint: a,
                        docs: x,
                        queue_ns: b,
                        exec_ns: a ^ b,
                        total_ns: b.wrapping_add(a ^ b),
                    },
                    1 => Response::Shed {
                        id,
                        queue_depth: x,
                        capacity: y,
                    },
                    2 => Response::Error { id, message },
                    3 => Response::Pong { id },
                    4 => Response::ReplSnapshot {
                        id,
                        doc_id: message,
                        tags: strings,
                        epoch: a,
                        digest: b,
                        tree: bytes,
                    },
                    5 => Response::ReplRecord {
                        id,
                        doc_id: message,
                        frame: bytes,
                    },
                    6 => Response::ReplDone {
                        id,
                        documents: x,
                        records: a,
                        snapshots: y,
                        removed: strings,
                    },
                    _ => Response::Stats {
                        id,
                        admitted: a,
                        executed: b,
                        shed: a ^ b,
                        errors: a.wrapping_add(b),
                        queue_depth: x,
                        capacity: y,
                        plan_hits: a.rotate_left(1),
                        plan_misses: b.rotate_left(3),
                        plan_analyses: a.rotate_right(7),
                        plan_cross_document_hits: b.rotate_right(11),
                        prune_candidates: a.wrapping_mul(3),
                        prune_pruned: b.wrapping_mul(5),
                        prune_survivors: a.wrapping_sub(b),
                        prune_false_positives: b.wrapping_sub(a),
                        wal_records: a.wrapping_mul(7),
                        wal_bytes: b.wrapping_mul(9),
                        snapshot_epoch: a.rotate_left(13),
                        repl_requests: b.rotate_left(17),
                        repl_records: a.wrapping_mul(11),
                        repl_snapshots: b.wrapping_mul(13),
                        repl_lag_epochs: a.rotate_right(19),
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip(request in arb_request()) {
        let encoded = request.encode();
        prop_assert_eq!(Request::decode(&encoded), Ok(request));
    }

    #[test]
    fn responses_round_trip(response in arb_response()) {
        let encoded = response.encode();
        prop_assert_eq!(Response::decode(&encoded), Ok(response));
    }

    #[test]
    fn arbitrary_payloads_never_panic_the_decoders(payload in vec(0u8..=255, 0..64usize)) {
        // Any byte string is either a valid message or a clean error.
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }

    #[test]
    fn truncated_payloads_are_errors(request in arb_request(), cut in proptest::any::<Index>()) {
        let encoded = request.encode();
        // Strictly shorter than the full encoding: never `Ok` of the same
        // request with trailing state, always a clean `Err`.
        let cut = cut.index(encoded.len().max(1));
        if cut < encoded.len() {
            prop_assert!(Request::decode(&encoded[..cut]).is_err());
        }
    }

    /// Every historical stats layout still decodes: a frame hand-encoded
    /// under tag 5 (legacy), 6 (v2) or 7 (v3) yields the counters it
    /// carries verbatim and zero for every counter added later, and a
    /// truncated frame of any version is a clean error.
    #[test]
    fn older_stats_tags_decode_with_zero_fill(
        version in 0usize..3,
        counters in vec(proptest::any::<Index>(), 15usize),
        cut in proptest::any::<Index>(),
    ) {
        let c: Vec<u64> = counters.iter().map(|i| i.index(usize::MAX) as u64).collect();
        // Fields shared by every version: id + 4 counters, depth, capacity.
        let mut wire = Vec::new();
        wire.push([5u8, 6, 7][version]);
        for v in &c[0..5] {
            wire.extend_from_slice(&v.to_le_bytes());
        }
        wire.extend_from_slice(&(c[5] as u32).to_le_bytes());
        wire.extend_from_slice(&(c[6] as u32).to_le_bytes());
        if version >= 1 {
            // v2 adds 8 plan-cache + prune counters.
            for v in &c[7..15] {
                wire.extend_from_slice(&v.to_le_bytes());
            }
        }
        if version >= 2 {
            // v3 adds 3 durability counters.
            for v in &c[0..3] {
                wire.extend_from_slice(&v.to_le_bytes());
            }
        }
        let decoded = Response::decode(&wire);
        prop_assert!(decoded.is_ok(), "version {} failed: {:?}", version, decoded);
        let Ok(Response::Stats {
            id,
            admitted,
            executed,
            shed,
            errors,
            queue_depth,
            capacity,
            plan_hits,
            prune_false_positives,
            wal_records,
            snapshot_epoch,
            repl_requests,
            repl_records,
            repl_snapshots,
            repl_lag_epochs,
            ..
        }) = decoded
        else {
            panic!("expected stats");
        };
        prop_assert_eq!(
            (id, admitted, executed, shed, errors),
            (c[0], c[1], c[2], c[3], c[4])
        );
        prop_assert_eq!((queue_depth, capacity), (c[5] as u32, c[6] as u32));
        if version >= 1 {
            prop_assert_eq!((plan_hits, prune_false_positives), (c[7], c[14]));
        } else {
            prop_assert_eq!((plan_hits, prune_false_positives), (0, 0));
        }
        if version >= 2 {
            prop_assert_eq!((wal_records, snapshot_epoch), (c[0], c[2]));
        } else {
            prop_assert_eq!((wal_records, snapshot_epoch), (0, 0));
        }
        // No historical tag carries replication counters.
        prop_assert_eq!(
            (repl_requests, repl_records, repl_snapshots, repl_lag_epochs),
            (0, 0, 0, 0)
        );
        // Any strict prefix is Truncated, never a partial decode.
        let cut = cut.index(wire.len());
        if cut < wire.len() {
            prop_assert!(Response::decode(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn oversized_declared_lengths_are_rejected_before_buffering(
        declared in 9u32..u32::MAX,
        tail in vec(0u8..=255, 0..16usize),
    ) {
        // A peer declaring a frame longer than the cap is rejected from the
        // 4 header bytes alone — the payload is never allocated, however
        // large the declared length is.
        let max = 8u32;
        let mut buffer = FrameBuffer::new(max);
        buffer.push(&declared.to_be_bytes());
        buffer.push(&tail);
        prop_assert_eq!(
            buffer.next_frame(),
            Err(FrameError::TooLarge { declared, max })
        );
    }

    #[test]
    fn frame_streams_reassemble_across_arbitrary_split_writes(
        payloads in vec(vec(0u8..=255, 1..40usize), 1..8usize),
        cuts in vec(proptest::any::<Index>(), 0..12usize),
    ) {
        // Encode all frames back to back, then chop the byte stream at
        // arbitrary positions and feed the chunks one by one — exactly what
        // a TCP peer sees when writes split or coalesce in flight.
        let mut stream = Vec::new();
        for payload in &payloads {
            stream.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            stream.extend_from_slice(payload);
        }
        let mut positions: Vec<usize> =
            cuts.iter().map(|c| c.index(stream.len() + 1)).collect();
        positions.push(0);
        positions.push(stream.len());
        positions.sort_unstable();

        let mut buffer = FrameBuffer::new(1 << 10);
        let mut decoded = Vec::new();
        for window in positions.windows(2) {
            buffer.push(&stream[window[0]..window[1]]);
            while let Some(frame) = buffer.next_frame().expect("valid stream") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, payloads);
        prop_assert_eq!(buffer.pending(), 0);
    }
}

/// Headers alone (no payload yet) must park the decoder, not error it.
#[test]
fn header_split_across_pushes_waits_for_payload() {
    let mut buffer = FrameBuffer::new(64);
    let payload = b"hello";
    let header = (payload.len() as u32).to_be_bytes();
    buffer.push(&header[..2]);
    assert_eq!(buffer.next_frame(), Ok(None));
    buffer.push(&header[2..]);
    assert_eq!(buffer.next_frame(), Ok(None));
    buffer.push(payload);
    assert_eq!(buffer.next_frame(), Ok(Some(payload.to_vec())));
    assert_eq!(buffer.next_frame(), Ok(None));
    assert_eq!(buffer.pending(), 0);
}
