//! Property tests for the network wire format: the frame codec
//! ([`cqt_service::net::frame`]) and the request/response protocol
//! ([`cqt_service::net::protocol`]).
//!
//! Three properties the serving layer relies on:
//!
//! 1. **Round-trip** — every representable request and response decodes
//!    back to itself after encoding (the client and server agree on the
//!    wire format by construction, not by luck).
//! 2. **Rejection without panic** — arbitrary garbage, truncated payloads
//!    and oversized frame headers produce `Err`, never a panic or an
//!    out-of-bounds allocation (a malicious or broken peer cannot take a
//!    connection thread down).
//! 3. **Reassembly across split writes** — a frame stream chopped at
//!    arbitrary byte boundaries (as TCP is free to do) reassembles into
//!    exactly the original frame sequence.

use cqt_service::net::frame::{FrameBuffer, FrameError};
use cqt_service::net::protocol::{Request, Response, WireFanOut, WireLang};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::Index;

/// Strategy for short ASCII strings (query texts, doc ids, error messages).
fn wire_string() -> impl Strategy<Value = String> {
    vec(0u8..96, 0..24usize).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| char::from(b' ' + (b % 95)))
            .collect()
    })
}

/// Strategy covering every request variant.
fn arb_request() -> impl Strategy<Value = Request> {
    (
        (0..3usize, proptest::any::<Index>(), wire_string()),
        (
            0..3usize,
            wire_string(),
            proptest::any::<Index>(),
            proptest::any::<bool>(),
        ),
    )
        .prop_map(|((variant, id, text), (fanout, target, fp, xpath))| {
            let id = id.index(usize::MAX) as u64;
            let fp_key = fp.index(usize::MAX) as u64;
            match variant {
                0 => Request::Query {
                    id,
                    lang: if xpath { WireLang::XPath } else { WireLang::Cq },
                    text,
                    fanout: match fanout {
                        0 => WireFanOut::All,
                        1 => WireFanOut::Doc(target),
                        _ => WireFanOut::Tag(target),
                    },
                    fp_key,
                },
                1 => Request::Ping { id },
                _ => Request::Stats { id },
            }
        })
}

/// Strategy covering every response variant.
fn arb_response() -> impl Strategy<Value = Response> {
    (
        (0..5usize, proptest::any::<Index>()),
        (proptest::any::<Index>(), proptest::any::<Index>()),
        (0..u32::MAX, 0..u32::MAX, wire_string()),
    )
        .prop_map(|((variant, id), (a, b), (x, y, message))| {
            let id = id.index(usize::MAX) as u64;
            let (a, b) = (a.index(usize::MAX) as u64, b.index(usize::MAX) as u64);
            match variant {
                0 => Response::Answer {
                    id,
                    fingerprint: a,
                    docs: x,
                    queue_ns: b,
                    exec_ns: a ^ b,
                    total_ns: b.wrapping_add(a ^ b),
                },
                1 => Response::Shed {
                    id,
                    queue_depth: x,
                    capacity: y,
                },
                2 => Response::Error { id, message },
                3 => Response::Pong { id },
                _ => Response::Stats {
                    id,
                    admitted: a,
                    executed: b,
                    shed: a ^ b,
                    errors: a.wrapping_add(b),
                    queue_depth: x,
                    capacity: y,
                    plan_hits: a.rotate_left(1),
                    plan_misses: b.rotate_left(3),
                    plan_analyses: a.rotate_right(7),
                    plan_cross_document_hits: b.rotate_right(11),
                    prune_candidates: a.wrapping_mul(3),
                    prune_pruned: b.wrapping_mul(5),
                    prune_survivors: a.wrapping_sub(b),
                    prune_false_positives: b.wrapping_sub(a),
                    wal_records: a.wrapping_mul(7),
                    wal_bytes: b.wrapping_mul(9),
                    snapshot_epoch: a.rotate_left(13),
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip(request in arb_request()) {
        let encoded = request.encode();
        prop_assert_eq!(Request::decode(&encoded), Ok(request));
    }

    #[test]
    fn responses_round_trip(response in arb_response()) {
        let encoded = response.encode();
        prop_assert_eq!(Response::decode(&encoded), Ok(response));
    }

    #[test]
    fn arbitrary_payloads_never_panic_the_decoders(payload in vec(0u8..=255, 0..64usize)) {
        // Any byte string is either a valid message or a clean error.
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }

    #[test]
    fn truncated_payloads_are_errors(request in arb_request(), cut in proptest::any::<Index>()) {
        let encoded = request.encode();
        // Strictly shorter than the full encoding: never `Ok` of the same
        // request with trailing state, always a clean `Err`.
        let cut = cut.index(encoded.len().max(1));
        if cut < encoded.len() {
            prop_assert!(Request::decode(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn oversized_declared_lengths_are_rejected_before_buffering(
        declared in 9u32..u32::MAX,
        tail in vec(0u8..=255, 0..16usize),
    ) {
        // A peer declaring a frame longer than the cap is rejected from the
        // 4 header bytes alone — the payload is never allocated, however
        // large the declared length is.
        let max = 8u32;
        let mut buffer = FrameBuffer::new(max);
        buffer.push(&declared.to_be_bytes());
        buffer.push(&tail);
        prop_assert_eq!(
            buffer.next_frame(),
            Err(FrameError::TooLarge { declared, max })
        );
    }

    #[test]
    fn frame_streams_reassemble_across_arbitrary_split_writes(
        payloads in vec(vec(0u8..=255, 1..40usize), 1..8usize),
        cuts in vec(proptest::any::<Index>(), 0..12usize),
    ) {
        // Encode all frames back to back, then chop the byte stream at
        // arbitrary positions and feed the chunks one by one — exactly what
        // a TCP peer sees when writes split or coalesce in flight.
        let mut stream = Vec::new();
        for payload in &payloads {
            stream.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            stream.extend_from_slice(payload);
        }
        let mut positions: Vec<usize> =
            cuts.iter().map(|c| c.index(stream.len() + 1)).collect();
        positions.push(0);
        positions.push(stream.len());
        positions.sort_unstable();

        let mut buffer = FrameBuffer::new(1 << 10);
        let mut decoded = Vec::new();
        for window in positions.windows(2) {
            buffer.push(&stream[window[0]..window[1]]);
            while let Some(frame) = buffer.next_frame().expect("valid stream") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, payloads);
        prop_assert_eq!(buffer.pending(), 0);
    }
}

/// Headers alone (no payload yet) must park the decoder, not error it.
#[test]
fn header_split_across_pushes_waits_for_payload() {
    let mut buffer = FrameBuffer::new(64);
    let payload = b"hello";
    let header = (payload.len() as u32).to_be_bytes();
    buffer.push(&header[..2]);
    assert_eq!(buffer.next_frame(), Ok(None));
    buffer.push(&header[2..]);
    assert_eq!(buffer.next_frame(), Ok(None));
    buffer.push(payload);
    assert_eq!(buffer.next_frame(), Ok(Some(payload.to_vec())));
    assert_eq!(buffer.next_frame(), Ok(None));
    assert_eq!(buffer.pending(), 0);
}
