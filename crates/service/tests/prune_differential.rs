//! Differential properties of the corpus-scale pruning layer: a pruned
//! scatter–gather run must be **answer-fingerprint identical** to an
//! unpruned run of the same workload — on random corpora at every
//! selectivity extreme, across arbitrary committed edit scripts, and under
//! concurrent writers (where the per-document oracle replays ground truth).
//!
//! The pruning layer is an over-approximating index double-checked against
//! per-snapshot [`cqt_trees::DocSummary`]s, so these tests are exactly the
//! soundness contract: pruning may only skip documents whose answer is
//! provably empty, and the skipped answers still enter the fingerprint at
//! their original positions.

use std::collections::BTreeMap;

use cqt_service::{
    Corpus, CorpusMutationOracle, CorpusMutationWorkload, CorpusReport, CorpusRequest,
    CorpusWorkload, FanOut, PlanOptions, PruneStats, QuerySpec, ServiceConfig, ServiceRunner,
};
use cqt_trees::edit::{EditScript, TreeEdit};
use cqt_trees::generate::{
    document_corpus, random_edit_script, DocumentCorpusConfig, EditScriptConfig, LabelVocabulary,
};
use cqt_trees::parse::parse_term;
use cqt_trees::Tree;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BASE_ALPHABET: [&str; 4] = ["A", "B", "C", "D"];

fn base_alphabet() -> Vec<String> {
    BASE_ALPHABET.iter().map(|s| s.to_string()).collect()
}

/// Every label a corpus generated with `distinct` templates could carry:
/// the base alphabet plus each template's private prefixed copy. Queries
/// drawn from this pool cover hit-everything, hit-one-family and
/// hit-nothing selectivities in the same run.
fn label_pool(distinct: usize) -> Vec<String> {
    let mut pool = base_alphabet();
    for t in 0..distinct {
        for label in BASE_ALPHABET {
            pool.push(format!("T{t}_{label}"));
        }
    }
    pool
}

fn corpus_of(trees: Vec<Tree>, shards: usize) -> Corpus {
    let corpus = Corpus::new(shards);
    for (i, tree) in trees.into_iter().enumerate() {
        corpus.insert(format!("doc-{i:03}"), tree).unwrap();
    }
    corpus
}

/// Runs `workload` twice — pruning on, pruning off — and returns both
/// reports after asserting the invariants every pair must satisfy.
fn run_both(corpus: &Corpus, workload: &CorpusWorkload) -> (CorpusReport, CorpusReport) {
    let pruned = ServiceRunner::new(ServiceConfig::with_threads(2)).run_corpus(corpus, workload);
    let unpruned = ServiceRunner::new(ServiceConfig::with_threads(2).with_prune(false))
        .run_corpus(corpus, workload);
    assert_eq!(
        pruned.answer_fingerprint, unpruned.answer_fingerprint,
        "pruning changed the gathered answers"
    );
    assert_eq!(
        unpruned.prune,
        PruneStats::default(),
        "a disabled pruner must count nothing"
    );
    assert_eq!(
        pruned.prune.candidates,
        pruned.prune.pruned + pruned.prune.survivors,
        "every candidate is either pruned or survives"
    );
    (pruned, unpruned)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random corpora at every vocabulary extreme: whatever the index
    /// prunes, the fingerprints agree.
    #[test]
    fn pruned_runs_match_unpruned_on_random_corpora(
        seed in 0u64..1 << 32,
        vocab in 0usize..3,
        documents in 1usize..10,
        distinct in 1usize..5,
        picks in proptest::collection::vec((0usize..64, 0usize..64), 1..6),
    ) {
        let vocabulary = [
            LabelVocabulary::Shared,
            LabelVocabulary::Overlapping,
            LabelVocabulary::Disjoint,
        ][vocab];
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = document_corpus(
            &mut rng,
            &DocumentCorpusConfig {
                documents,
                distinct,
                nodes_per_document: 24,
                alphabet: base_alphabet(),
                vocabulary,
            },
        );
        let corpus = corpus_of(trees, 3);
        let pool = label_pool(distinct);
        let requests: Vec<CorpusRequest> = picks
            .iter()
            .map(|&(a, b)| {
                let l1 = &pool[a % pool.len()];
                let l2 = &pool[b % pool.len()];
                CorpusRequest {
                    query: QuerySpec::parse_cq(&format!(
                        "Q(y) :- {l1}(x), Child(x, y), {l2}(y)."
                    ))
                    .unwrap(),
                    target: FanOut::All,
                }
            })
            .collect();
        let workload = CorpusWorkload::new(requests, 2);
        let (pruned, unpruned) = run_both(&corpus, &workload);
        // Unpruned executes every (request, document) pair; those pairs are
        // exactly the pruned run's candidates.
        prop_assert_eq!(pruned.prune.candidates, unpruned.doc_executions);
    }

    /// Random edit scripts committed between runs: the index follows the
    /// write path, and fingerprints agree on every epoch the corpus
    /// passes through.
    #[test]
    fn pruned_runs_match_unpruned_across_random_edit_scripts(
        seed in 0u64..1 << 32,
        rounds in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = document_corpus(
            &mut rng,
            &DocumentCorpusConfig {
                documents: 4,
                distinct: 3,
                nodes_per_document: 16,
                alphabet: base_alphabet(),
                vocabulary: LabelVocabulary::Overlapping,
            },
        );
        let corpus = corpus_of(trees, 2);
        let pool = label_pool(3);
        let requests: Vec<CorpusRequest> = pool
            .iter()
            .step_by(3)
            .map(|label| CorpusRequest {
                query: QuerySpec::parse_cq(&format!("Q(x) :- {label}(x).")).unwrap(),
                target: FanOut::All,
            })
            .collect();
        let workload = CorpusWorkload::new(requests, 1);
        let script_config = EditScriptConfig {
            edits: 3,
            // Include prefixed labels so edits move documents in and out of
            // the queried posting lists, not just around inside them.
            alphabet: pool.clone(),
            ..EditScriptConfig::default()
        };
        run_both(&corpus, &workload);
        for round in 0..rounds {
            let id = format!("doc-{:03}", round % 4);
            let tree = {
                let document = corpus.get(&id.clone().into()).unwrap();
                let snapshot = document.handle().snapshot();
                snapshot.prepared.tree().clone()
            };
            let script = random_edit_script(&mut rng, &tree, &script_config);
            corpus.commit(&id.into(), &script).unwrap();
            run_both(&corpus, &workload);
        }
    }
}

/// A relabel that *adds* a required label makes the document visible to
/// queries requiring it in the very next epoch — the index is synced by the
/// commit itself, not by some later refresh.
#[test]
fn relabel_makes_a_document_visible_in_the_next_epoch() {
    let corpus = Corpus::new(2);
    corpus
        .insert("a", parse_term("R(A(B), C)").unwrap())
        .unwrap();
    corpus.insert("b", parse_term("R(C)").unwrap()).unwrap();
    let workload = CorpusWorkload::new(
        vec![CorpusRequest {
            query: QuerySpec::parse_cq("Q(x) :- Z(x).").unwrap(),
            target: FanOut::All,
        }],
        1,
    );
    // No document carries `Z`: everything prunes, and the pruned
    // fingerprint still matches the unpruned run's (all-empty) answers.
    let (pruned, _) = run_both(&corpus, &workload);
    assert_eq!(pruned.prune.pruned, 2);
    assert_eq!(pruned.prune.survivors, 0);

    // Relabel `C` → `Z` in document `b` (node 1 in preorder).
    let mut script = EditScript::new();
    script.push(TreeEdit::Relabel {
        node_pre: 1,
        labels: vec!["Z".to_string()],
    });
    corpus.commit(&"b".into(), &script).unwrap();
    assert!(
        corpus.label_index().contains("Z", &"b".into()),
        "the commit itself syncs the posting list"
    );

    let (pruned, unpruned) = run_both(&corpus, &workload);
    assert_eq!(pruned.prune.pruned, 1, "document a still prunes");
    assert_eq!(pruned.prune.survivors, 1, "document b is visible");
    assert_eq!(
        pruned.prune.false_positives, 0,
        "the survivor's answer is non-empty"
    );
    assert!(unpruned.answer_fingerprint != 0);

    // And a relabel *removing* the label prunes it again.
    let mut script = EditScript::new();
    script.push(TreeEdit::Relabel {
        node_pre: 1,
        labels: vec!["C".to_string()],
    });
    corpus.commit(&"b".into(), &script).unwrap();
    let (pruned, _) = run_both(&corpus, &workload);
    assert_eq!(pruned.prune.pruned, 2);
}

/// Concurrent writers: a pruned mutating run's every observation must match
/// the per-document oracle at the exact epoch the reader snapshot — pruned
/// reads record the empty answer's fingerprint, which the oracle confirms.
#[test]
fn pruned_mutating_runs_satisfy_the_corpus_oracle() {
    let initial: BTreeMap<_, _> = [("a", "R(A(B), C)"), ("b", "R(C(C), C)"), ("c", "R(B, B)")]
        .into_iter()
        .map(|(id, term)| (id.into(), parse_term(term).unwrap()))
        .collect();

    // Writer on `a` flips node 3 (`C`) between `Z` and back; writer on `b`
    // grows and shrinks a `B` — both move documents across the posting
    // lists the queries consult, mid-run.
    let relabel = |node_pre: u32, label: &str| {
        let mut script = EditScript::new();
        script.push(TreeEdit::Relabel {
            node_pre,
            labels: vec![label.to_string()],
        });
        script
    };
    let insert_b = {
        let mut script = EditScript::new();
        script.push(TreeEdit::insert_subtree(0, 0, parse_term("B").unwrap()));
        script
    };
    let delete_first = {
        let mut script = EditScript::new();
        script.push(TreeEdit::DeleteSubtree { node_pre: 1 });
        script
    };
    let writers: BTreeMap<_, Vec<EditScript>> = [
        ("a".into(), vec![relabel(3, "Z"), relabel(3, "C")]),
        ("b".into(), vec![insert_b, delete_first]),
    ]
    .into_iter()
    .collect();

    let queries = vec![
        QuerySpec::parse_cq("Q(x) :- B(x).").unwrap(),
        QuerySpec::parse_cq("Q(x) :- Z(x).").unwrap(),
        QuerySpec::parse_cq("Q(y) :- R(x), Child(x, y), C(y).").unwrap(),
    ];
    let oracle =
        CorpusMutationOracle::build(&initial, &writers, &queries, &PlanOptions::default()).unwrap();

    let corpus = Corpus::new(2);
    for (id, tree) in &initial {
        corpus.insert(id.clone(), tree.clone()).unwrap();
    }
    let workload = CorpusMutationWorkload::new(
        queries,
        initial.keys().cloned().collect(),
        writers.into_iter().collect(),
        600,
    );
    let report = ServiceRunner::new(ServiceConfig::with_threads(3))
        .run_corpus_mutating(&corpus, &workload)
        .unwrap();
    oracle
        .check(&report)
        .expect("pruned observations match the oracle");
    assert!(report.prune.candidates > 0, "pruning ran");
    assert!(
        report.prune.pruned > 0,
        "the Z query prunes at least some epochs"
    );
}
