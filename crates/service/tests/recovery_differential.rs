//! Differential properties of the durable write path: whatever byte the
//! process dies on, recovery must reconstruct **exactly** the in-memory
//! replay of the durable prefix — and refuse, with a typed error, to
//! paper over corruption of bytes it once declared durable.
//!
//! The kill is simulated the way a kill actually lands on disk: the
//! write-ahead log is truncated at an arbitrary byte offset (the fsync'd
//! prefix survives, the in-flight suffix is torn), swept across **every
//! record boundary and mid-record offset** of randomly generated commit
//! histories. Mid-log byte flips — corruption inside the durable prefix,
//! not a torn tail — must surface as [`RecoveryError::CorruptRecord`].

use std::fs;
use std::path::PathBuf;

use cqt_service::{recover_document, Corpus, Durability, Follower, RecoveryError};
use cqt_trees::generate::{random_edit_script, random_tree, EditScriptConfig, RandomTreeConfig};
use cqt_trees::Tree;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_dir(name: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cqt-recovery-diff-{}-{name}-{seed}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn base_alphabet() -> Vec<String> {
    ["A", "B", "C", "D", "E"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Generates a random initial tree plus `commits` chained random edit
/// scripts, returning the per-epoch trees of the full in-memory replay
/// (`epochs[e]` is the tree after `e` commits).
fn random_history(
    seed: u64,
    nodes: usize,
    commits: usize,
) -> (Vec<Tree>, Vec<cqt_trees::EditScript>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = random_tree(
        &mut rng,
        &RandomTreeConfig {
            nodes,
            alphabet: base_alphabet(),
            ..RandomTreeConfig::default()
        },
    );
    let script_config = EditScriptConfig {
        edits: 2,
        alphabet: base_alphabet(),
        ..EditScriptConfig::default()
    };
    let mut epochs = vec![initial];
    let mut scripts = Vec::new();
    for _ in 0..commits {
        let script = random_edit_script(&mut rng, epochs.last().unwrap(), &script_config);
        let (next, _) = script.apply_to(epochs.last().unwrap()).unwrap();
        epochs.push(next);
        scripts.push(script);
    }
    (epochs, scripts)
}

/// Walks the record frames of a log file, returning the byte offset at
/// which each durable prefix ends: `boundaries[e]` is the log length after
/// exactly `e` records (boundaries[0] is the header).
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![5]; // magic + version
    let mut pos = 5;
    while pos < bytes.len() {
        let body_len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4 + body_len + 8;
        boundaries.push(pos);
    }
    assert_eq!(pos, bytes.len(), "log ends on a record boundary");
    boundaries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The kill-point sweep: truncate the log at every record boundary and
    /// at a mid-record offset inside every record; recovery must land on
    /// exactly the in-memory replay of the durable prefix, digest-verified.
    #[test]
    fn recovery_equals_in_memory_replay_at_every_kill_point(
        seed in 0u64..1 << 32,
        nodes in 4usize..24,
        commits in 1usize..8,
        // Fraction through the record at which the mid-record cut lands.
        cut_frac in 1usize..97,
    ) {
        let dir = temp_dir("sweep", seed);
        let (epochs, scripts) = random_history(seed, nodes, commits);
        {
            // snapshot_every = 0: no periodic truncation, so the log holds
            // the entire history and every epoch is a reachable kill point.
            let (corpus, report) = Corpus::open_durable(
                2,
                Durability::Wal { dir: dir.clone(), snapshot_every: 0 },
            )
            .unwrap();
            prop_assert_eq!(report.documents.len(), 0);
            corpus.insert("doc-000", epochs[0].clone()).unwrap();
            for script in &scripts {
                corpus.commit(&"doc-000".into(), script).unwrap();
            }
            // The leader dies here: nothing is flushed beyond what append
            // already fsync'd, which is everything — the torn cases below
            // shave bytes off to model a kill mid-append.
        }
        let doc_dir = dir.join("doc-000");
        let wal_path = doc_dir.join("wal.log");
        let full = fs::read(&wal_path).unwrap();
        let boundaries = record_boundaries(&full);
        prop_assert_eq!(boundaries.len(), commits + 1);

        // Collect every cut: each boundary, and one mid-record offset per
        // record. Descending order lets us truncate the same file in place.
        let mut cuts: Vec<usize> = boundaries.clone();
        for e in 0..commits {
            let span = boundaries[e + 1] - boundaries[e];
            let mid = boundaries[e] + 1 + (cut_frac * (span - 1)) / 100;
            cuts.push(mid.min(boundaries[e + 1] - 1));
        }
        cuts.sort_unstable_by(|a, b| b.cmp(a));
        cuts.dedup();
        for cut in cuts {
            let file = fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
            file.set_len(cut as u64).unwrap();
            drop(file);
            // The durable prefix is the records wholly below the cut.
            let epoch = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            let recovered = recover_document(&doc_dir).unwrap();
            prop_assert_eq!(recovered.epoch, epoch as u64);
            prop_assert_eq!(recovered.replayed_records, epoch as u64);
            prop_assert_eq!(
                recovered.tree.structure_digest(),
                epochs[epoch].structure_digest(),
                "recovered tree must equal the in-memory replay of {} commits",
                epoch
            );
            let expected_torn = cut - boundaries[epoch];
            prop_assert_eq!(recovered.torn_bytes as usize, expected_torn);
        }

        // Reopen the corpus at the final (fully truncated) kill point and
        // keep committing: the log resumes cleanly from the recovered
        // epoch.
        let (corpus, report) = Corpus::open_durable(
            2,
            Durability::Wal { dir: dir.clone(), snapshot_every: 0 },
        )
        .unwrap();
        prop_assert_eq!(report.documents.len(), 1);
        let resumed_epoch = report.documents[0].epoch;
        let resume_tree = corpus
            .snapshot(&"doc-000".into())
            .unwrap()
            .prepared
            .tree()
            .clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let script = random_edit_script(
            &mut rng,
            &resume_tree,
            &EditScriptConfig { alphabet: base_alphabet(), ..EditScriptConfig::default() },
        );
        let commit = corpus.commit(&"doc-000".into(), &script).unwrap();
        prop_assert_eq!(commit.epoch, resumed_epoch + 1);
        drop(corpus);
        let recovered = recover_document(&doc_dir).unwrap();
        prop_assert_eq!(recovered.epoch, resumed_epoch + 1);
        prop_assert_eq!(recovered.torn_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A byte flip **inside the durable prefix** (any non-final record's
    /// body or checksum) is corruption, not a torn tail: recovery must
    /// refuse with the typed mid-log error rather than quietly truncate.
    #[test]
    fn mid_log_corruption_is_a_typed_error(
        seed in 0u64..1 << 32,
        commits in 2usize..6,
        flip_pick in 0usize..1 << 16,
    ) {
        let dir = temp_dir("corrupt", seed);
        let (epochs, scripts) = random_history(seed, 12, commits);
        {
            let (corpus, _) = Corpus::open_durable(
                1,
                Durability::Wal { dir: dir.clone(), snapshot_every: 0 },
            )
            .unwrap();
            corpus.insert("doc-000", epochs[0].clone()).unwrap();
            for script in &scripts {
                corpus.commit(&"doc-000".into(), script).unwrap();
            }
        }
        let doc_dir = dir.join("doc-000");
        let wal_path = doc_dir.join("wal.log");
        let mut bytes = fs::read(&wal_path).unwrap();
        let boundaries = record_boundaries(&bytes);
        // Flip one byte of a non-final record, past its 4-byte length
        // prefix (a corrupted length is indistinguishable from a torn tail
        // in any length-prefixed log, so it is out of scope here).
        let victim = flip_pick % (commits - 1);
        let lo = boundaries[victim] + 4;
        let hi = boundaries[victim + 1];
        let at = lo + (flip_pick / (commits - 1)) % (hi - lo);
        bytes[at] ^= 0x5a;
        fs::write(&wal_path, &bytes).unwrap();
        match recover_document(&doc_dir) {
            Err(RecoveryError::CorruptRecord { record, .. }) => {
                prop_assert_eq!(record, victim as u64);
            }
            other => prop_assert!(false, "expected CorruptRecord, got {:?}", other),
        }
        // And the corpus-level open refuses identically — corruption never
        // yields a silently shorter history.
        match Corpus::open_durable(1, Durability::Wal { dir: dir.clone(), snapshot_every: 0 }) {
            Err(RecoveryError::CorruptRecord { .. }) => {}
            other => prop_assert!(false, "expected CorruptRecord, got {:?}", other.map(|_| ())),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Snapshots bound the log without changing what recovery reconstructs,
    /// and a follower tailing the directory converges to the leader's
    /// digest at every commit.
    #[test]
    fn snapshots_and_followers_preserve_the_replay(
        seed in 0u64..1 << 32,
        commits in 1usize..10,
        snapshot_every in 1u64..4,
    ) {
        let dir = temp_dir("follow", seed);
        let (epochs, scripts) = random_history(seed, 16, commits);
        let (corpus, _) = Corpus::open_durable(
            2,
            Durability::Wal { dir: dir.clone(), snapshot_every },
        )
        .unwrap();
        corpus.insert("doc-000", epochs[0].clone()).unwrap();
        let follower = Follower::open(&dir, 2).unwrap();
        for (i, script) in scripts.iter().enumerate() {
            corpus.commit(&"doc-000".into(), script).unwrap();
            follower.poll().unwrap();
            let got = follower
                .corpus()
                .snapshot(&"doc-000".into())
                .unwrap();
            prop_assert_eq!(got.epoch, i as u64 + 1);
            prop_assert_eq!(
                got.prepared.tree().structure_digest(),
                epochs[i + 1].structure_digest(),
                "follower diverged at commit {}",
                i
            );
        }
        // A cold restart of the leader reconstructs the same final state
        // through whatever snapshot/log-tail split the cadence produced.
        drop(corpus);
        let (reopened, report) = Corpus::open_durable(
            2,
            Durability::Wal { dir: dir.clone(), snapshot_every },
        )
        .unwrap();
        prop_assert_eq!(report.documents.len(), 1);
        prop_assert_eq!(report.documents[0].epoch, commits as u64);
        let got = reopened.snapshot(&"doc-000".into()).unwrap();
        prop_assert_eq!(
            got.prepared.tree().structure_digest(),
            epochs[commits].structure_digest()
        );
        if snapshot_every as usize <= commits {
            prop_assert!(
                report.documents[0].snapshot_epoch > 0,
                "the cadence must have produced a snapshot"
            );
            prop_assert!(
                report.documents[0].replayed_records < commits as u64,
                "the snapshot must bound the replay"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Document lifecycle through the durable directory: inserts create
/// directories the follower picks up, removals delete them and the
/// follower drops the document.
#[test]
fn follower_tracks_inserts_and_removals() {
    let dir = temp_dir("lifecycle", 7);
    let (epochs, scripts) = random_history(7, 12, 2);
    let (corpus, _) = Corpus::open_durable(
        2,
        Durability::Wal {
            dir: dir.clone(),
            snapshot_every: 2,
        },
    )
    .unwrap();
    corpus.insert("alpha", epochs[0].clone()).unwrap();
    let follower = Follower::open(&dir, 2).unwrap();
    assert_eq!(follower.corpus().len(), 1);

    // A second document appears mid-flight, with tags, and gets commits.
    corpus
        .insert_tagged("beta/1", &["hot"], epochs[0].clone())
        .unwrap();
    for script in &scripts {
        corpus.commit(&"beta/1".into(), script).unwrap();
    }
    let progress = follower.poll().unwrap();
    assert_eq!(progress.documents_loaded, 1);
    assert_eq!(follower.corpus().len(), 2);
    let beta = follower.corpus().get(&"beta/1".into()).unwrap();
    assert!(beta.has_tag("hot"), "tags survive the durable round trip");
    assert_eq!(
        beta.handle().snapshot().prepared.tree().structure_digest(),
        epochs[2].structure_digest()
    );

    // Removal deletes the on-disk directory; the follower converges.
    corpus.remove(&"alpha".into()).unwrap();
    assert!(!dir.join("alpha").exists());
    let progress = follower.poll().unwrap();
    assert_eq!(progress.documents_removed, 1);
    assert_eq!(follower.corpus().len(), 1);
    assert!(follower.corpus().get(&"alpha".into()).is_none());
    let _ = fs::remove_dir_all(&dir);
}
