//! Deterministic overload behaviour of the TCP serving front end.
//!
//! Load-shedding is usually timing-dependent; this test removes the timing.
//! The server starts with its worker pool **paused** (`start_paused`), so
//! nothing ever leaves the admission queue while we fill it. With a queue
//! capacity of 4:
//!
//! * the first 4 queries are admitted (no response yet — workers are
//!   parked);
//! * the next 3 get an **immediate** `SHED` response, each reporting a
//!   queue depth at capacity — receiving them while zero answers have
//!   arrived proves admission control never blocks the connection behind
//!   the full queue;
//! * after `resume()`, all 4 admitted requests are answered, and their
//!   fingerprints equal the fingerprint of the same query executed later
//!   with no contention at all — shedding never changes the answer of an
//!   already-admitted request.

use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use cqt_service::net::frame::{write_frame, FRAME_HEADER_LEN};
use cqt_service::net::protocol::{Request, Response, WireFanOut, WireLang};
use cqt_service::shard::Corpus;
use cqt_service::{NetServer, NetServerConfig};
use cqt_trees::parse::parse_term;

fn read_response(stream: &mut TcpStream) -> Response {
    let mut header = [0u8; FRAME_HEADER_LEN];
    stream.read_exact(&mut header).unwrap();
    let len = u32::from_be_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).unwrap();
    Response::decode(&payload).unwrap()
}

fn query(id: u64) -> Request {
    Request::Query {
        id,
        lang: WireLang::Cq,
        text: "Q(y) :- A(x), Child(x, y), B(y).".into(),
        fanout: WireFanOut::All,
        // Same fingerprint key for every request: every answer to this
        // query must carry the identical fingerprint, contended or not.
        fp_key: 7,
    }
}

#[test]
fn full_queue_sheds_immediately_and_never_touches_admitted_answers() {
    const CAPACITY: usize = 4;
    let corpus = Arc::new(Corpus::new(2));
    corpus
        .insert("doc-a", parse_term("R(A(B), C(A(B)))").unwrap())
        .unwrap();
    corpus
        .insert("doc-b", parse_term("R(A(B, B), A)").unwrap())
        .unwrap();
    let handle = NetServer::start(
        corpus,
        NetServerConfig {
            workers: 1,
            queue_capacity: CAPACITY,
            start_paused: true,
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Fill the queue exactly to capacity. The single reader thread admits
    // pipelined requests in order, and the paused workers drain nothing,
    // so after these sends the queue deterministically holds 4 jobs.
    for id in 1..=CAPACITY as u64 {
        write_frame(&mut stream, &query(id).encode()).unwrap();
    }

    // Everything beyond capacity is shed *immediately* — the responses
    // arrive while all 4 admitted requests are still unanswered, so a full
    // queue cannot block or stall the connection.
    for id in 10..13u64 {
        write_frame(&mut stream, &query(id).encode()).unwrap();
        match read_response(&mut stream) {
            Response::Shed {
                id: shed_id,
                queue_depth,
                capacity,
            } => {
                assert_eq!(shed_id, id);
                assert_eq!(capacity, CAPACITY as u32);
                assert!(
                    queue_depth >= capacity,
                    "shed below the admission threshold: depth {queue_depth} < {capacity}"
                );
            }
            other => panic!("request {id} expected SHED, got {other:?}"),
        }
    }

    // Un-park the workers: every admitted request must now be answered, in
    // admission order (single worker), with exact latency accounting.
    handle.resume();
    let mut admitted_fingerprints = Vec::new();
    for expected_id in 1..=CAPACITY as u64 {
        match read_response(&mut stream) {
            Response::Answer {
                id,
                fingerprint,
                docs,
                queue_ns,
                exec_ns,
                total_ns,
            } => {
                assert_eq!(id, expected_id);
                assert_eq!(docs, 2);
                assert_eq!(queue_ns + exec_ns, total_ns, "accounting must sum");
                admitted_fingerprints.push(fingerprint);
            }
            other => panic!("request {expected_id} expected answer, got {other:?}"),
        }
    }

    // Ground truth: the same query with zero contention. Shedding must not
    // have perturbed the answers of the requests that were admitted.
    write_frame(&mut stream, &query(99).encode()).unwrap();
    let uncontended = match read_response(&mut stream) {
        Response::Answer { fingerprint, .. } => fingerprint,
        other => panic!("uncontended request expected answer, got {other:?}"),
    };
    for (i, fingerprint) in admitted_fingerprints.iter().enumerate() {
        assert_eq!(
            *fingerprint,
            uncontended,
            "admitted request {} answered differently under overload",
            i + 1
        );
    }

    // The server's own counters agree with what the client saw.
    write_frame(&mut stream, &Request::Stats { id: 1000 }.encode()).unwrap();
    match read_response(&mut stream) {
        Response::Stats {
            admitted,
            executed,
            shed,
            errors,
            ..
        } => {
            assert_eq!(admitted, 5);
            assert_eq!(executed, 5);
            assert_eq!(shed, 3);
            assert_eq!(errors, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    handle.shutdown();
}
