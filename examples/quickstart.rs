//! Quickstart: build a tree, pose conjunctive queries, analyse their
//! complexity, evaluate them, and rewrite a cyclic query into an acyclic
//! positive query.
//!
//! Run with `cargo run --example quickstart`.

use cq_trees::prelude::*;
use cq_trees::rewrite::rewrite::{rewrite_to_apq_with, RewriteOptions};
use cq_trees::trees::{parse::parse_xml, render};

fn main() {
    // ------------------------------------------------------------------
    // 1. A small XML-like document, loaded into the tree substrate.
    // ------------------------------------------------------------------
    let tree = parse_xml(
        "<library>\
           <shelf><book><title/><author/></book><book><title/></book></shelf>\
           <shelf><journal><title/></journal></shelf>\
           <catalog/>\
         </library>",
    )
    .expect("valid document");
    println!("Document ({}):", render::summary(&tree));
    println!("{}", render::ascii_tree(&tree));

    // ------------------------------------------------------------------
    // 2. An acyclic query, written in datalog notation: titles of books that
    //    are followed by a catalog somewhere later in the document.
    // ------------------------------------------------------------------
    let acyclic =
        parse_query("Q(t) :- book(b), Child(b, t), title(t), Following(b, c), catalog(c).")
            .expect("valid query");
    println!("Acyclic query:    {acyclic}");
    let engine = Engine::new();
    let (strategy, classification) = engine.plan(&acyclic);
    println!("  planned strategy: {strategy:?}   (signature is {classification})");
    match engine.eval(&tree, &acyclic) {
        Answer::Nodes(nodes) => println!("  answers: {} title node(s) -> {nodes:?}", nodes.len()),
        other => println!("  answers: {other:?}"),
    }

    // ------------------------------------------------------------------
    // 3. A cyclic query over an NP-hard signature (Child + Following):
    //    shelves that contain a book whose title is followed by an author
    //    *of the same shelf* — the cycle makes this inexpressible in plain
    //    XPath without rewriting.
    // ------------------------------------------------------------------
    let cyclic = parse_query(
        "Q(s) :- shelf(s), Child+(s, t), title(t), Child+(s, a), author(a), Following(t, a).",
    )
    .expect("valid query");
    println!("Cyclic query:     {cyclic}");
    let (strategy, classification) = engine.plan(&cyclic);
    println!("  planned strategy: {strategy:?}   (signature is {classification})");
    match engine.eval(&tree, &cyclic) {
        Answer::Nodes(nodes) => println!("  answers: {} shelf node(s) -> {nodes:?}", nodes.len()),
        other => println!("  answers: {other:?}"),
    }

    // ------------------------------------------------------------------
    // 4. Rewrite the cyclic query into an equivalent acyclic positive query
    //    (Theorem 6.6 / 6.10) and show its size.
    // ------------------------------------------------------------------
    let (apq, stats) = rewrite_to_apq_with(&cyclic, &RewriteOptions::default())
        .expect("rewriting succeeds for queries over the paper's axes");
    println!(
        "Rewritten into an APQ with {} disjunct(s), total size {} (original size {}).",
        apq.len(),
        apq.size(),
        cyclic.size()
    );
    println!(
        "  rewrite stats: {} lifter applications, {} unsatisfiable branches pruned",
        stats.lifter_applications, stats.unsat_pruned
    );
    let rewritten_answer = engine.eval_positive(&tree, &apq);
    let original_answer = engine.eval(&tree, &cyclic);
    assert_eq!(rewritten_answer, original_answer, "the APQ is equivalent");
    println!("  APQ evaluation agrees with the original query.");

    // ------------------------------------------------------------------
    // 5. The acyclic query can also be round-tripped through XPath.
    // ------------------------------------------------------------------
    let xpath = emit_acyclic_query(&acyclic).expect("acyclic monadic queries emit as XPath");
    println!("As XPath:         {xpath}");
    let compiled = compile_to_positive_query(&parse_xpath(&xpath).expect("emitted XPath parses"));
    assert_eq!(
        engine.eval_positive(&tree, &compiled),
        engine.eval(&tree, &acyclic),
        "XPath round trip preserves the answer"
    );
    println!("  XPath round trip preserves the answers.");
}
