//! Dominance constraints from computational linguistics as Boolean
//! conjunctive queries over trees.
//!
//! Section 1 of the paper notes that conjunctions of *dominance constraints*
//! (Marcus, Hindle, Fleck 1983) — partial descriptions of parse trees using
//! "node x dominates node y" statements — are equivalent to Boolean
//! conjunctive queries over trees, and that rewriting them into *solved
//! forms* corresponds to rewriting cyclic queries into acyclic ones.
//!
//! This example models a scope ambiguity ("every student reads a book"):
//! two quantifier fragments must both dominate the same verb fragment, but
//! their relative order is unspecified. We (1) check which candidate parse
//! trees satisfy the constraints and (2) compute the solved forms via the
//! CQ→APQ rewrite system — the two surviving disjuncts correspond exactly to
//! the two scope readings.
//!
//! Run with `cargo run --example dominance_constraints`.

use cq_trees::prelude::*;
use cq_trees::rewrite::rewrite::{rewrite_to_apq_with, RewriteOptions};
use cq_trees::trees::parse::parse_term;

fn main() {
    // The dominance constraint: both quantifier fragments (EVERY, A) dominate
    // the verb fragment (READS); the root fragment (S) dominates everything.
    // Written as a Boolean conjunctive query over Child* / Child+.
    let constraint = parse_query(
        "Q() :- S(r), Child*(r, e), EVERY(e), Child*(r, a), A(a), \
                Child+(e, v), READS(v), Child+(a, v).",
    )
    .unwrap();
    println!("Dominance constraint as a Boolean CQ:\n  {constraint}");
    println!(
        "  signature classification: {}",
        SignatureAnalysis::analyse_query(&constraint)
    );
    println!(
        "  the constraint graph is {} (the two dominance chains meet at the verb)",
        if constraint.is_acyclic() {
            "acyclic"
        } else {
            "cyclic"
        }
    );

    // Candidate parse trees (the two scope readings plus a defective one).
    let wide_every = parse_term("S(EVERY(A(READS(student, book))))").unwrap();
    let wide_a = parse_term("S(A(EVERY(READS(student, book))))").unwrap();
    let broken = parse_term("S(EVERY(student), A(READS(book)))").unwrap();

    let engine = Engine::new();
    for (name, tree) in [
        ("every > a  (surface scope)", &wide_every),
        ("a > every  (inverse scope)", &wide_a),
        ("fragments in disjoint subtrees", &broken),
    ] {
        let satisfied = engine.eval_boolean(tree, &constraint);
        println!(
            "  candidate '{name}': {}",
            if satisfied { "admissible" } else { "ruled out" }
        );
    }

    // Solved forms: rewrite the (cyclic) constraint into an acyclic positive
    // query. Each satisfiable disjunct is a solved form — a tree-shaped
    // description in which the relative position of EVERY and A is resolved.
    let (apq, stats) = rewrite_to_apq_with(&constraint, &RewriteOptions::default()).unwrap();
    println!(
        "\nSolved forms ({} disjuncts, {} unsatisfiable branches pruned):",
        apq.len(),
        stats.unsat_pruned
    );
    for (i, form) in apq.iter().enumerate() {
        println!("  [{i}] {form}");
    }

    // Sanity: the union of solved forms is equivalent to the constraint on
    // the candidate trees.
    for tree in [&wide_every, &wide_a, &broken] {
        let original = engine.eval_boolean(tree, &constraint);
        let solved = apq.iter().any(|form| engine.eval_boolean(tree, form));
        assert_eq!(original, solved, "solved forms must be equivalent");
    }
    println!("\nThe solved forms agree with the original constraint on all candidates.");
}
