//! The NP-hardness reduction of Theorem 5.1 in action: encode a 1-in-3 3SAT
//! instance as a Boolean conjunctive query over {Child, Child+} on the fixed
//! data tree of Figure 4, solve it with the MAC engine, and read the truth
//! assignment back from the witness valuation.
//!
//! Run with `cargo run --example sat_reduction`.

use cq_trees::hardness::sat::OneInThreeInstance;
use cq_trees::hardness::thm51::{figure4_tree, Thm51Reduction, Thm51Variant};
use cq_trees::prelude::*;
use cq_trees::trees::render;

fn main() {
    // A small positive 1-in-3 3SAT instance:
    //   (p ∨ q ∨ r), (q ∨ r ∨ s), (p ∨ r ∨ s)   — exactly one true per clause.
    let instance = OneInThreeInstance::new(4, vec![[0, 1, 2], [1, 2, 3], [0, 2, 3]]);
    println!("Instance: {instance}");
    println!(
        "Ground truth (dedicated SAT solver): {}",
        if instance.is_satisfiable() {
            "satisfiable"
        } else {
            "unsatisfiable"
        }
    );

    // The fixed data tree of Figure 4 (independent of the instance).
    let tree = figure4_tree();
    println!(
        "\nFixed data tree of Figure 4 ({}):",
        render::summary(&tree)
    );
    println!("{}", render::ascii_tree(&tree));

    // The reduction: a Boolean query over {Child, Child+}.
    let reduction = Thm51Reduction::new(instance.clone(), Thm51Variant::Tau4ChildPlus);
    println!(
        "Encoded query: {} atoms over signature {} (classified as {})",
        reduction.query.size(),
        reduction.query.signature(),
        SignatureAnalysis::analyse_query(&reduction.query)
    );

    // Solve with the complete MAC engine and read back the assignment:
    // mapping x_i to the k-th X node of the tree selects the k-th literal of
    // clause i.
    let solver = MacSolver::new(&reduction.tree);
    match solver.witness(&reduction.query) {
        Some(valuation) => {
            println!("\nThe query is satisfied; extracting the assignment:");
            let mut assignment = vec![false; instance.num_vars()];
            for (i, clause) in instance.clauses().iter().enumerate() {
                let x = reduction
                    .query
                    .find_var(&format!("x{}", i + 1))
                    .expect("clause variable exists");
                let node = valuation.get(x);
                // The X nodes form the chain root → v2 → v3; the depth of the
                // chosen node is the selected literal position (0-based).
                let position = reduction.tree.depth(node) as usize;
                let selected = clause[position];
                assignment[selected] = true;
                println!(
                    "  clause {} {:?}: literal #{} (variable {}) is TRUE",
                    i + 1,
                    clause,
                    position + 1,
                    selected
                );
            }
            println!("  derived assignment: {assignment:?}");
            assert!(
                instance.is_solution(&assignment),
                "the derived assignment must solve the instance"
            );
            println!("  verified: exactly one true literal per clause.");
        }
        None => println!("\nThe query is not satisfied: the instance is unsatisfiable."),
    }

    // The same machinery certifies unsatisfiability.
    let unsat = OneInThreeInstance::unsatisfiable_k4();
    let unsat_reduction = Thm51Reduction::new(unsat.clone(), Thm51Variant::Tau4ChildPlus);
    let (holds, stats) =
        MacSolver::new(&unsat_reduction.tree).eval_boolean_with_stats(&unsat_reduction.query);
    println!(
        "\nUnsatisfiable family {unsat}: query holds = {holds} \
         (search explored {} decisions, {} dead ends)",
        stats.decisions, stats.dead_ends
    );
    assert!(!holds);
}
