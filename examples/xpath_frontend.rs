//! XPath front-end: parse positive Core XPath, compile it to conjunctive
//! queries, evaluate both ways, and translate acyclic queries back to XPath.
//!
//! Run with `cargo run --example xpath_frontend`.

use cq_trees::prelude::*;
use cq_trees::trees::generate::{xml_document, XmlDocumentConfig};
use cq_trees::xpath::eval::evaluate_path;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let document = xml_document(
        &mut rng,
        &XmlDocumentConfig {
            records: 40,
            fields_per_record: 6,
            nesting_probability: 0.35,
            max_nesting: 3,
        },
    );
    println!("Data-centric document with {} nodes.", document.len());

    let engine = Engine::new();
    let queries = [
        "//record[name]/value",
        "//record[ref and note]",
        "//record//record/name",
        "//item/following-sibling::ref",
        "//record[name or item]/value | //note",
    ];

    for text in queries {
        let parsed = parse_xpath(text).expect("query parses");
        // Direct XPath evaluation.
        let direct = evaluate_xpath(&document, &parsed);
        // Compilation into (acyclic) conjunctive queries and evaluation with
        // the CQ engine.
        let compiled = compile_to_positive_query(&parsed);
        let via_cq = engine.eval_positive(&document, &compiled);
        let via_cq_count = via_cq.len();
        assert_eq!(
            via_cq,
            Answer::Nodes(direct.iter().collect()),
            "XPath and CQ evaluation must agree for {text}"
        );
        println!(
            "{text}\n    -> {} node(s); compiled into {} conjunctive quer{} of total size {}",
            via_cq_count,
            compiled.len(),
            if compiled.len() == 1 { "y" } else { "ies" },
            compiled.size()
        );
        for disjunct in compiled.iter() {
            println!("       {disjunct}");
        }
    }

    // The reverse direction (Remark 6.1): an acyclic conjunctive query that
    // was never written as XPath can be emitted as XPath.
    let cq =
        parse_query("Q(v) :- record(r), Child(r, n), name(n), Following(n, v), value(v).").unwrap();
    println!("\nConjunctive query: {cq}");
    match emit_acyclic_query(&cq) {
        Ok(xpath) => {
            println!("As XPath:          {xpath}");
            let reparsed = parse_xpath(&xpath).expect("emitted XPath parses");
            let direct = evaluate_path(&document, &reparsed.paths[0], None);
            let original = engine.eval(&document, &cq);
            assert_eq!(original, Answer::Nodes(direct.iter().collect()));
            println!(
                "Both formulations select the same {} node(s).",
                direct.len()
            );
        }
        Err(err) => println!("(not expressible: {err})"),
    }
}
