//! Linguistic workload: the paper's Figure 1 query on a synthetic
//! Treebank-style corpus.
//!
//! The paper motivates conjunctive queries over trees with searches in parsed
//! natural-language corpora such as the Penn Treebank: *"prepositional
//! phrases following noun phrases in the same sentence"* is the cyclic query
//!
//! ```text
//! Q(z) :- S(x), Descendant(x, y), NP(y), Descendant(x, z), PP(z), Following(y, z).
//! ```
//!
//! The Penn Treebank itself cannot be redistributed, so this example runs the
//! query on a synthetic phrase-structure corpus produced by the workload
//! generator (see DESIGN.md §5 for the substitution note), comparing the
//! complete MAC solver against the brute-force baseline.
//!
//! Run with `cargo run --release --example treebank_queries`.

use std::time::Instant;

use cq_trees::prelude::*;
use cq_trees::query::cq::figure1_query;
use cq_trees::trees::generate::{treebank, TreebankConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2004);
    let config = TreebankConfig {
        sentences: 200,
        max_depth: 7,
        pp_probability: 0.6,
    };
    let corpus = treebank(&mut rng, &config);
    println!(
        "Synthetic corpus: {} nodes, {} sentences, {} NPs, {} PPs",
        corpus.len(),
        corpus.nodes_with_label_name("S").len(),
        corpus.nodes_with_label_name("NP").len(),
        corpus.nodes_with_label_name("PP").len()
    );

    let query = figure1_query();
    println!("Query (Figure 1): {query}");
    let analysis = SignatureAnalysis::analyse_query(&query);
    println!("Signature classification: {analysis}");

    // The cyclic query over {Child+, Following} is NP-hard in general; the
    // engine therefore uses the MAC solver. On real corpora the search is
    // still fast because arc consistency prunes aggressively.
    let engine = Engine::new();
    let start = Instant::now();
    let answer = engine.eval(&corpus, &query);
    let mac_time = start.elapsed();
    let pp_count = answer.len();
    println!("PPs following an NP in the same sentence: {pp_count}   (MAC, {mac_time:?})");

    // Cross-check against the brute-force baseline on a smaller corpus.
    let mut rng = StdRng::seed_from_u64(2006);
    let small = treebank(
        &mut rng,
        &TreebankConfig {
            sentences: 12,
            max_depth: 5,
            pp_probability: 0.6,
        },
    );
    let start = Instant::now();
    let mac_small = Engine::with_strategy(EvalStrategy::Mac).eval(&small, &query);
    let mac_small_time = start.elapsed();
    let start = Instant::now();
    let naive_small = Engine::with_strategy(EvalStrategy::Naive).eval(&small, &query);
    let naive_small_time = start.elapsed();
    assert_eq!(mac_small, naive_small, "solvers must agree");
    println!(
        "Small corpus ({} nodes): {} answers — MAC {:?} vs naive {:?}",
        small.len(),
        mac_small.len(),
        mac_small_time,
        naive_small_time
    );

    // A few more linguistically flavoured queries, written as XPath where
    // possible and as conjunctive queries where not.
    let vp_with_embedded_np =
        parse_query("Q(v) :- VP(v), Child(v, n), NP(n), Child+(n, p), PP(p).").unwrap();
    let nested_sentences = parse_query("Q(s) :- S(s), Child+(s, t), S(t).").unwrap();
    for (name, q) in [
        (
            "VPs with an NP object containing a PP",
            &vp_with_embedded_np,
        ),
        ("sentences embedding another sentence", &nested_sentences),
    ] {
        let (strategy, _) = engine.plan(q);
        let count = engine.eval(&corpus, q).len();
        println!("{name}: {count}   (strategy {strategy:?})");
    }
}
